#include "ecosystem/evaluated.h"

#include <algorithm>
#include <map>
#include <set>

#include "geo/cities.h"
#include "util/rng.h"
#include "util/strings.h"

namespace vpna::ecosystem {

namespace {

using vpn::ProviderSpec;
using vpn::SubscriptionType;
using vpn::TunnelProtocol;
using vpn::VantagePointSpec;

constexpr std::uint64_t kEvalSeed = 0x6576616c70726f76ULL;

// Non-censored datacenters used for generic vantage-point placement, keyed
// by the city they sit in. Censored datacenters (TR/KR/RU ISPs, the two
// Dutch access ISPs, Bangkok) are only used through explicit placements so
// the Table 4 redirect counts stay controlled.
struct DcRef {
  std::string_view id;
  std::string_view city;
  std::string_view country;
};
constexpr std::array<DcRef, 31> kGenericDcs = {{
    {"rentweb-sea", "Seattle", "US"},
    {"rentweb-mia", "Miami", "US"},
    {"nodespark-lax", "Los Angeles", "US"},
    {"oceancompute-nyc", "New York", "US"},
    {"stratalayer-dal", "Dallas", "US"},
    {"nodespark-atl", "Atlanta", "US"},
    {"maple-tor", "Toronto", "CA"},
    {"maple-mtl", "Montreal", "CA"},
    {"hosteu-lon", "London", "GB"},
    {"hosteu-man", "Manchester", "GB"},
    {"hosteu-ams", "Amsterdam", "NL"},
    {"hosteu-fra", "Frankfurt", "DE"},
    {"hosteu-ber", "Berlin", "DE"},
    {"hosteu-par", "Paris", "FR"},
    {"czhost-prg", "Prague", "CZ"},
    {"nordichost-sto", "Stockholm", "SE"},
    {"balt-rig", "Riga", "LV"},
    {"rom-buh", "Bucharest", "RO"},
    {"medhost-mil", "Milan", "IT"},
    {"iber-mad", "Madrid", "ES"},
    {"gigacloud-osl", "Oslo", "NO"},
    {"rootbox-lux", "Luxembourg", "LU"},
    {"oceancompute-blr", "Bangalore", "IN"},
    {"stratalayer-mex", "Mexico City", "MX"},
    {"privatetier-zrh", "Zurich", "CH"},
    {"greenhost-dub", "Dublin", "IE"},
    {"gigaline-kul", "Kuala Lumpur", "MY"},
    {"leaplayer-sin", "Singapore", "SG"},
    {"sakura-tyo", "Tokyo", "JP"},
    {"harbour-hkg", "Hong Kong", "HK"},
    {"aus-syd", "Sydney", "AU"},
}};

const DcRef* generic_dc(std::string_view id) {
  for (const auto& dc : kGenericDcs)
    if (dc.id == id) return &dc;
  return nullptr;
}

// City/country lookup for explicit placements into censored datacenters.
struct CensoredDc {
  std::string_view id;
  std::string_view city;
  std::string_view country;
};
constexpr std::array<CensoredDc, 12> kCensoredDcs = {{
    {"ttk-mow", "Moscow", "RU"},
    {"hzt-mow", "Moscow", "RU"},
    {"beeline-mow", "Moscow", "RU"},
    {"rt-led", "St Petersburg", "RU"},
    {"mts-led", "St Petersburg", "RU"},
    {"dtln-nsk", "Novosibirsk", "RU"},
    {"anatolia-ist", "Istanbul", "TR"},
    {"anatolia-ank", "Ankara", "TR"},
    {"hanriver-sel", "Seoul", "KR"},
    {"siam-bkk", "Bangkok", "TH"},
    {"upclink-ams", "Amsterdam", "NL"},
    {"ziggonet-ams", "Amsterdam", "NL"},
}};

// Builders ------------------------------------------------------------------

class SpecBuilder {
 public:
  explicit SpecBuilder(std::string name)
      : rng_(util::Rng(kEvalSeed).fork(name)) {
    spec_.name = std::move(name);
  }

  // Honest vantage point in a generic datacenter.
  void place(std::string_view dc_id) {
    const auto* dc = generic_dc(dc_id);
    if (dc == nullptr) return;
    add_vp(dc->city, dc->country, dc->city, dc->id);
  }

  // Honest vantage point in a censored/ISP datacenter.
  void place_censored(std::string_view dc_id) {
    for (const auto& dc : kCensoredDcs) {
      if (dc.id == dc_id) {
        add_vp(dc.city, dc.country, dc.city, dc.id);
        return;
      }
    }
  }

  // Virtual vantage point: advertised somewhere it is not.
  void place_virtual(std::string_view advertised_city,
                     std::string_view advertised_country,
                     std::string_view home_dc_id) {
    const auto* dc = generic_dc(home_dc_id);
    if (dc == nullptr) return;
    add_vp(advertised_city, advertised_country, dc->city, dc->id);
  }

  // Fills remaining slots. Most vantage points rent provider-private
  // slices (empty datacenter id -> resolved at deploy time); a small
  // fraction lands in the well-known shared hosting facilities, which is
  // what makes those blocks blacklistable and occasionally shared.
  void fill_to(std::size_t total, int max_per_city = 1,
               double shared_fraction = 0.05) {
    std::map<std::string, int> per_city;
    for (const auto& vp : spec_.vantage_points) ++per_city[vp.physical_city];
    while (spec_.vantage_points.size() < total) {
      const auto& dc = kGenericDcs[rng_.index(kGenericDcs.size())];
      auto& used = per_city[std::string(dc.city)];
      if (used >= max_per_city) continue;
      ++used;
      if (rng_.chance(shared_fraction)) {
        add_vp(dc.city, dc.country, dc.city, dc.id);
      } else {
        add_vp(dc.city, dc.country, dc.city, "");
      }
    }
  }

  ProviderSpec& spec() { return spec_; }

 private:
  void add_vp(std::string_view advertised_city,
              std::string_view advertised_country,
              std::string_view physical_city, std::string_view dc_id) {
    VantagePointSpec vp;
    const auto cc = util::to_lower(advertised_country);
    vp.id = util::format("%s-%d", cc.c_str(), ++country_counters_[cc]);
    vp.advertised_city = std::string(advertised_city);
    vp.advertised_country = std::string(advertised_country);
    vp.physical_city = std::string(physical_city);
    vp.datacenter_id = std::string(dc_id);
    vp.reliability = regional_reliability(physical_city);
    spec_.vantage_points.push_back(std::move(vp));
  }

  // §5.2: connections through Middle East / Africa / South America vantage
  // points were far less reliable than North America / Europe.
  static double regional_reliability(std::string_view physical_city) {
    static const std::set<std::string_view> kFlakyCountries = {
        "BR", "AR", "CL", "CO", "PE", "VE",            // South America
        "IL", "AE", "SA", "IR", "EG", "QA", "JO",      // Middle East
        "ZA", "NG", "KE", "MA",                        // Africa
    };
    const auto city = geo::city_by_name(physical_city);
    if (city && kFlakyCountries.contains(city->country_code)) return 0.70;
    return 1.0;
  }

  ProviderSpec spec_;
  util::Rng rng_;
  std::map<std::string, int> country_counters_;
};

struct ProviderPlan {
  std::string_view name;
  SubscriptionType subscription;
  bool custom_client;
  // Behaviour toggles (defaults in ProviderBehavior are the clean case).
  bool dns_leak = false;
  bool ipv6_leak = false;
  bool transparent_proxy = false;
  bool injects = false;
  bool fail_open_fast = false;   // leaks within the 3-minute window
  bool fail_open_slow = false;   // fails open, but detector is too slow
  bool kill_switch_shipped_off = false;  // has one; disabled by default
  bool kill_switch_on = false;           // rare: safe default
};

using S = SubscriptionType;

// Appendix A (subscription types) joined with the §6 behaviour findings.
// fail_open_fast is set on 25 of the 43 custom-client providers, including
// the five market leaders that ship kill switches disabled.
constexpr std::array<ProviderPlan, 62> kPlans = {{
    // name, sub, client, dns, v6, proxy, inject, fastOpen, slowOpen, ksOff, ksOn
    {"NordVPN", S::kPaid, true, false, false, false, false, true, false, true, false},
    {"ExpressVPN", S::kPaid, true, false, false, false, false, true, false, true, false},
    {"Hotspot Shield", S::kPaid, true, false, false, false, false, true, false, true, false},
    {"Private Internet Access", S::kPaid, true, false, false, false, false, false, false, false, true},
    {"TunnelBear", S::kFree, true, false, false, false, false, true, false, true, false},
    {"CyberGhost", S::kPaid, true, false, false, true, false, true, false, false, false},
    {"IPVanish", S::kPaid, true, false, false, false, false, true, false, true, false},
    {"HideMyAss", S::kPaid, true, false, false, false, false, true, false, false, false},
    {"PureVPN", S::kPaid, true, false, false, false, false, true, false, false, false},
    {"Windscribe", S::kTrial, true, false, false, false, false, false, true, false, true},
    {"ProtonVPN", S::kFree, true, false, false, false, false, false, false, false, true},
    {"Mullvad", S::kPaid, false, false, false, false, false, false, false, false, false},
    {"SaferVPN", S::kTrial, true, false, false, false, false, true, false, false, false},
    {"Betternet", S::kFree, true, false, false, false, false, false, true, false, false},
    {"Private Tunnel", S::kTrial, true, false, true, false, false, true, false, false, false},
    {"AceVPN", S::kPaid, false, false, false, true, false, false, false, false, false},
    {"AirVPN", S::kPaid, false, false, false, false, false, false, false, false, false},
    {"Anonine", S::kPaid, true, false, false, false, false, true, false, false, false},
    {"Avast SecureLine", S::kTrial, true, false, false, false, false, false, false, false, false},
    {"Avira Phantom", S::kTrial, true, false, false, false, false, true, false, false, false},
    {"Boxpn", S::kPaid, true, false, false, false, false, true, false, false, false},
    {"Buffered VPN", S::kPaid, true, false, true, false, false, true, false, false, false},
    {"BulletVPN", S::kPaid, true, false, true, false, false, false, false, false, false},
    {"Celo.net", S::kTrial, false, false, false, false, false, false, false, false, false},
    {"CrypticVPN", S::kPaid, false, false, false, false, false, false, false, false, false},
    {"Encrypt.me", S::kTrial, true, false, false, false, false, false, true, false, false},
    {"FinchVPN", S::kPaid, true, false, false, false, false, false, false, false, false},
    {"FlowVPN", S::kTrial, false, false, false, false, false, false, false, false, false},
    {"FlyVPN", S::kPaid, true, false, true, false, false, true, false, false, false},
    {"Freedome VPN", S::kPaid, true, true, false, true, false, false, false, false, true},
    {"Freedom IP", S::kPaid, true, false, false, false, false, true, false, false, false},
    {"Goose VPN", S::kPaid, true, false, false, false, false, false, true, false, false},
    {"GoTrusted VPN", S::kPaid, true, false, false, false, false, false, true, false, false},
    {"HideIPVPN", S::kTrial, true, false, true, false, false, false, false, false, false},
    {"IB VPN", S::kTrial, true, false, false, false, false, true, false, false, false},
    {"Ironsocket", S::kPaid, false, false, false, false, false, false, false, false, false},
    {"Le VPN", S::kPaid, true, false, true, false, false, true, false, false, false},
    {"LimeVPN", S::kPaid, false, false, false, false, false, false, false, false, false},
    {"LiquidVPN", S::kPaid, true, false, true, false, false, false, false, false, false},
    {"MyIP.io", S::kPaid, true, false, false, false, false, true, false, false, false},
    {"NVPN", S::kPaid, false, false, false, false, false, false, false, false, false},
    {"PrivateVPN", S::kTrial, true, false, true, false, false, true, false, false, false},
    {"ProxVPN", S::kFree, false, false, false, false, false, false, false, false, false},
    {"RA4W VPN", S::kPaid, false, false, false, false, false, false, false, false, false},
    {"SecureVPN", S::kTrial, true, false, false, false, false, false, true, false, false},
    {"Seed4.me", S::kTrial, true, false, true, false, true, false, false, false, false},
    {"ShadeYouVPN", S::kTrial, false, false, false, false, false, false, false, false, false},
    {"Shellfire", S::kFree, false, false, false, false, false, false, false, false, false},
    {"Steganos Online Shield", S::kTrial, true, false, false, false, false, false, true, false, false},
    {"SurfEasy", S::kTrial, true, false, false, true, false, false, true, false, false},
    {"SwitchVPN", S::kTrial, false, false, false, false, false, false, false, false, false},
    {"TorVPN", S::kTrial, false, false, false, false, false, false, false, false, false},
    {"Trust.zone", S::kTrial, true, false, false, false, false, true, false, false, false},
    {"VPNBook", S::kFree, false, false, false, false, false, false, false, false, false},
    {"VPNUK", S::kTrial, true, false, false, false, false, true, false, false, false},
    {"VPNLand", S::kTrial, false, false, false, false, false, false, false, false, false},
    {"VPN Gate", S::kFree, true, false, false, true, false, true, false, false, false},
    {"VPN Monster", S::kTrial, false, false, false, false, false, false, false, false, false},
    {"VPN.ht", S::kPaid, true, false, true, false, false, true, false, false, false},
    {"WorldVPN", S::kTrial, true, true, true, false, false, true, false, false, false},
    {"ZenVPN", S::kTrial, false, false, false, false, false, false, false, false, false},
    {"Zoog VPN", S::kFree, true, false, true, false, false, false, false, false, false},
}};

// Explicit placements reproducing the paper's per-country redirect counts
// (Table 4) and shared-block memberships (Table 5).
void apply_forced_placements(SpecBuilder& b) {
  const std::string& name = b.spec().name;

  // --- Table 4: Russia (per-ISP block pages) --------------------------------
  if (name == "NordVPN" || name == "ExpressVPN" || name == "PureVPN" ||
      name == "CyberGhost")
    b.place_censored("ttk-mow");
  if (name == "IPVanish" || name == "Windscribe") b.place_censored("hzt-mow");
  if (name == "Private Internet Access") b.place_censored("rt-led");
  if (name == "HideIPVPN") b.place_censored("mts-led");
  if (name == "VPNLand") b.place_censored("dtln-nsk");
  if (name == "Trust.zone") b.place_censored("beeline-mow");

  // --- Table 4: Turkey (8 providers) ------------------------------------------
  for (const char* tr : {"NordVPN", "ExpressVPN", "PureVPN", "CyberGhost"})
    if (name == tr) b.place_censored("anatolia-ist");
  for (const char* tr : {"IPVanish", "VPNUK", "LimeVPN", "Boxpn"})
    if (name == tr) b.place_censored("anatolia-ank");

  // --- Table 4: South Korea (5) -------------------------------------------------
  for (const char* kr : {"NordVPN", "ExpressVPN", "FlyVPN", "PureVPN", "IB VPN"})
    if (name == kr) b.place_censored("hanriver-sel");

  // --- Table 4: Netherlands (1 provider per censored access ISP) -----------------
  if (name == "LiquidVPN") b.place_censored("ziggonet-ams");
  if (name == "ShadeYouVPN") b.place_censored("upclink-ams");

  // --- Table 4: Thailand (1) ------------------------------------------------------
  if (name == "FlyVPN") b.place_censored("siam-bkk");

  // --- Table 5: blocks shared by >= 3 providers ------------------------------------
  for (const char* p : {"IPVanish", "AirVPN", "CyberGhost"})
    if (name == p) b.place("gigacloud-osl");  // 82.102.27.0/24 (NO)
  for (const char* p : {"AceVPN", "CyberGhost", "Anonine"})
    if (name == p) b.place("rootbox-lux");  // 94.242.192.0/18 (LU)
  for (const char* p : {"RA4W VPN", "LimeVPN", "Ironsocket"})
    if (name == p) b.place("oceancompute-blr");  // 139.59.0.0/18 (IN)
  for (const char* p : {"AceVPN", "TunnelBear", "Freedome VPN"})
    if (name == p) b.place("stratalayer-mex");  // 169.57.0.0/17 (MX)
  for (const char* p : {"IPVanish", "AceVPN", "Anonine", "HideMyAss"})
    if (name == p) b.place("privatetier-zrh");  // 179.43.128.0/18 (CH)
  for (const char* p : {"AceVPN", "TunnelBear", "CyberGhost"})
    if (name == p) b.place("greenhost-dub");  // 185.108.128.0/22 (IE)
  for (const char* p : {"IPVanish", "Boxpn", "Anonine"})
    if (name == p) b.place("gigaline-kul");  // 202.176.4.0/24 (MY)
  for (const char* p : {"HideIPVPN", "VPNLand", "CyberGhost"})
    if (name == p) b.place("leaplayer-sin");  // 209.58.176.0/21 (SG)
}

// Virtual-vantage-point construction for the six providers the paper
// flags (§6.4.2).
void apply_virtual_locations(SpecBuilder& b) {
  const std::string& name = b.spec().name;

  if (name == "HideMyAss") {
    // ~150 endpoints, few physical homes: Americas out of Seattle and
    // Miami, Europe/Africa/Asia out of Prague, London and Berlin.
    struct VirtualVp {
      std::string_view city;
      std::string_view cc;
    };
    constexpr std::array<VirtualVp, 28> kAmericas = {{
        {"Mexico City", "MX"}, {"Panama City", "PA"}, {"San Jose CR", "CR"},
        {"Belize City", "BZ"}, {"Bogota", "CO"},      {"Lima", "PE"},
        {"Caracas", "VE"},     {"Santiago", "CL"},    {"Buenos Aires", "AR"},
        {"Sao Paulo", "BR"},   {"Denver", "US"},      {"Vancouver", "CA"},
        {"Mexico City", "MX"}, {"Panama City", "PA"}, {"Bogota", "CO"},
        {"Lima", "PE"},        {"Santiago", "CL"},    {"Buenos Aires", "AR"},
        {"Caracas", "VE"},     {"Belize City", "BZ"}, {"San Jose CR", "CR"},
        {"Sao Paulo", "BR"},   {"Denver", "US"},      {"Vancouver", "CA"},
        {"Mexico City", "MX"}, {"Bogota", "CO"},      {"Lima", "PE"},
        {"Santiago", "CL"},
    }};
    constexpr std::array<VirtualVp, 30> kEmeaAsia = {{
        {"Tehran", "IR"},     {"Riyadh", "SA"},   {"Pyongyang", "KP"},
        {"Cairo", "EG"},      {"Lagos", "NG"},    {"Nairobi", "KE"},
        {"Casablanca", "MA"}, {"Doha", "QA"},     {"Amman", "JO"},
        {"Dubai", "AE"},      {"Tel Aviv", "IL"}, {"Almaty", "KZ"},
        {"Karachi", "PK"},    {"Dhaka", "BD"},    {"Hanoi", "VN"},
        {"Manila", "PH"},     {"Jakarta", "ID"},  {"Taipei", "TW"},
        {"Beijing", "CN"},    {"Shanghai", "CN"}, {"Kyiv", "UA"},
        {"Belgrade", "RS"},   {"Sofia", "BG"},    {"Athens", "GR"},
        {"Zagreb", "HR"},     {"Chisinau", "MD"}, {"Reykjavik", "IS"},
        {"Vilnius", "LT"},    {"Tallinn", "EE"},  {"Warsaw", "PL"},
    }};
    // Americas virtualised out of Seattle (half) and Miami (half).
    for (std::size_t i = 0; i < kAmericas.size(); ++i) {
      b.place_virtual(kAmericas[i].city, kAmericas[i].cc,
                      i % 2 == 0 ? "rentweb-sea" : "rentweb-mia");
    }
    // EMEA/Asia out of Prague, London, Berlin.
    for (std::size_t i = 0; i < kEmeaAsia.size(); ++i) {
      const char* home = i % 3 == 0 ? "czhost-prg"
                         : i % 3 == 1 ? "hosteu-lon"
                                      : "hosteu-ber";
      b.place_virtual(kEmeaAsia[i].city, kEmeaAsia[i].cc, home);
    }
    // Another 89 "virtual city" duplicates spread over the same homes to
    // reach ~150 endpoints total.
    constexpr std::array<std::string_view, 5> kHomes = {
        "rentweb-sea", "rentweb-mia", "czhost-prg", "hosteu-lon", "hosteu-ber"};
    for (int i = 0; i < 89; ++i) {
      const auto& vv = kEmeaAsia[static_cast<std::size_t>(i) % kEmeaAsia.size()];
      b.place_virtual(vv.city, vv.cc, kHomes[static_cast<std::size_t>(i) % 5]);
    }
  } else if (name == "Avira Phantom") {
    // The 'US' endpoint that pings Europe in single digits.
    b.place_virtual("New York", "US", "hosteu-fra");
  } else if (name == "Le VPN") {
    // Exotic advertised locations, co-located in one Paris rack (Fig 9a).
    b.place_virtual("Belize City", "BZ", "hosteu-par");
    b.place_virtual("Santiago", "CL", "hosteu-par");
    b.place_virtual("Tallinn", "EE", "hosteu-par");
    b.place_virtual("Tehran", "IR", "hosteu-par");
    b.place_virtual("Riyadh", "SA", "hosteu-par");
    b.place_virtual("Caracas", "VE", "hosteu-par");
  } else if (name == "Freedom IP") {
    b.place_virtual("Tokyo", "JP", "hosteu-par");
    b.place_virtual("Sydney", "AU", "hosteu-par");
  } else if (name == "MyIP.io") {
    // US + FR co-located in Montreal; BE/DE/FI co-located in London.
    b.place_virtual("New York", "US", "maple-mtl");
    b.place_virtual("Paris", "FR", "maple-mtl");
    b.place_virtual("Brussels", "BE", "hosteu-lon");
    b.place_virtual("Berlin", "DE", "hosteu-lon");
    b.place_virtual("Helsinki", "FI", "hosteu-lon");
  } else if (name == "VPNUK") {
    b.place_virtual("Dubai", "AE", "hosteu-man");
    b.place_virtual("Tel Aviv", "IL", "hosteu-man");
  }
}

std::vector<EvaluatedProvider> build_evaluated() {
  std::vector<EvaluatedProvider> out;
  out.reserve(kPlans.size());

  for (const auto& plan : kPlans) {
    SpecBuilder b{std::string(plan.name)};
    auto& spec = b.spec();
    spec.subscription = plan.subscription;
    spec.has_custom_client = plan.custom_client;

    auto& behavior = spec.behavior;
    behavior.redirects_dns = !plan.dns_leak;
    behavior.blocks_ipv6 = !plan.ipv6_leak;
    behavior.transparent_proxy = plan.transparent_proxy;
    behavior.injects_content = plan.injects;
    if (plan.kill_switch_shipped_off) {
      behavior.has_kill_switch = true;
      behavior.kill_switch_default_on = false;
    }
    // NordVPN's macOS client scopes its kill switch to a chosen
    // application rather than blocking system-wide (§6.5).
    if (plan.name == std::string_view("NordVPN"))
      behavior.kill_switch_per_app_only = true;
    if (plan.kill_switch_on) {
      behavior.has_kill_switch = true;
      behavior.kill_switch_default_on = true;
    }
    if (plan.fail_open_fast) {
      behavior.fails_open = true;
      behavior.failure_detect_seconds = 25.0;
    } else if (plan.fail_open_slow) {
      behavior.fails_open = true;
      behavior.failure_detect_seconds = 420.0;  // evades the 3-min window
    } else {
      behavior.fails_open = false;
    }

    // Protocol sets: custom clients default to OpenVPN; config-file
    // providers advertise more.
    spec.protocols = {TunnelProtocol::kOpenVpn};
    if (!plan.custom_client) spec.protocols.push_back(TunnelProtocol::kPptp);

    apply_forced_placements(b);
    apply_virtual_locations(b);

    // Fill to target size: automated (config-file) providers get broad
    // coverage with a few servers per city; manual ones ~5 vantage points
    // (the §5.2 sampling).
    const std::size_t target =
        spec.name == "HideMyAss" ? spec.vantage_points.size()
        : plan.custom_client     ? std::max<std::size_t>(5, spec.vantage_points.size())
                                 : 30;
    b.fill_to(target, /*max_per_city=*/plan.custom_client ? 1 : 3);

    EvaluatedProvider ep;
    ep.spec = std::move(spec);
    ep.subscription = plan.subscription;
    if (plan.name == std::string_view("Anonine")) {
      // Reseller overlap with Boxpn: four vantage points alias onto the
      // same hosts (§6.3's exact-IP sharing).
      ep.shares_infrastructure_with = "Boxpn";
      ep.shared_vantage_ids = {"shared-1", "shared-2", "shared-3", "shared-4"};
    }
    out.push_back(std::move(ep));
  }
  return out;
}

}  // namespace

const std::vector<EvaluatedProvider>& evaluated_providers() {
  static const std::vector<EvaluatedProvider> kProviders = build_evaluated();
  return kProviders;
}

const EvaluatedProvider* evaluated_provider(std::string_view name) {
  for (const auto& p : evaluated_providers())
    if (p.spec.name == name) return &p;
  return nullptr;
}

EvaluatedStats evaluated_stats() {
  EvaluatedStats s;
  for (const auto& p : evaluated_providers()) {
    ++s.providers;
    const auto& b = p.spec.behavior;
    if (p.spec.has_custom_client) ++s.with_custom_client;
    s.vantage_points += static_cast<int>(p.spec.vantage_points.size());
    if (!b.redirects_dns) ++s.dns_leakers;
    if (!b.blocks_ipv6 && !b.supports_ipv6) ++s.ipv6_leakers;
    if (b.transparent_proxy) ++s.transparent_proxies;
    if (b.injects_content) ++s.injectors;
    bool has_virtual = false;
    for (const auto& vp : p.spec.vantage_points)
      if (vp.is_virtual()) has_virtual = true;
    if (has_virtual) ++s.virtual_location_users;
    if (p.spec.has_custom_client && b.fails_open &&
        !b.kill_switch_default_on && b.failure_detect_seconds <= 180)
      ++s.fail_open_within_window;
  }
  return s;
}

std::uint64_t catalog_fingerprint(
    std::span<const EvaluatedProvider> providers) {
  // Serialize every field that shapes a campaign into one canonical string
  // and hash it. Field separators keep adjacent values from aliasing
  // ("ab"+"c" vs "a"+"bc").
  std::string canon;
  canon.reserve(1 << 16);
  const auto field = [&canon](std::string_view v) {
    canon.append(v);
    canon.push_back('\x1f');
  };
  const auto num = [&field](double v) { field(util::format("%.17g", v)); };
  const auto flag = [&field](bool v) { field(v ? "1" : "0"); };
  for (const auto& p : providers) {
    const auto& spec = p.spec;
    field(spec.name);
    field(vpn::subscription_name(p.subscription));
    field(p.shares_infrastructure_with);
    for (const auto& id : p.shared_vantage_ids) field(id);
    for (const auto proto : spec.protocols) field(vpn::protocol_name(proto));
    flag(spec.has_custom_client);
    const auto& b = spec.behavior;
    flag(b.redirects_dns);
    flag(b.blocks_ipv6);
    flag(b.supports_ipv6);
    flag(b.has_kill_switch);
    flag(b.kill_switch_default_on);
    flag(b.kill_switch_per_app_only);
    num(b.failure_detect_seconds);
    flag(b.fails_open);
    flag(b.transparent_proxy);
    flag(b.injects_content);
    flag(b.manipulates_dns);
    flag(b.intercepts_tls);
    for (const auto& vp : spec.vantage_points) {
      field(vp.id);
      field(vp.advertised_city);
      field(vp.advertised_country);
      field(vp.physical_city);
      field(vp.datacenter_id);
      num(vp.reliability);
    }
    canon.push_back('\x1e');  // provider separator
  }
  return util::fnv1a(canon);
}

std::uint64_t catalog_fingerprint() {
  return catalog_fingerprint(evaluated_providers());
}

std::uint64_t provider_catalog_fingerprint(
    std::span<const EvaluatedProvider> providers, std::string_view name) {
  const EvaluatedProvider* self = nullptr;
  for (const auto& p : providers)
    if (p.spec.name == name) self = &p;
  if (self == nullptr) return 0;
  // The shard world deploys the provider itself plus, for resellers, the
  // partner whose hosts the shared vantage points alias onto — those two
  // entries are the entire catalog surface the shard reads.
  std::vector<EvaluatedProvider> slice;
  slice.push_back(*self);
  if (!self->shares_infrastructure_with.empty()) {
    for (const auto& p : providers)
      if (p.spec.name == self->shares_infrastructure_with)
        slice.push_back(p);
  }
  return catalog_fingerprint(slice);
}

std::uint64_t provider_catalog_fingerprint(std::string_view name) {
  return provider_catalog_fingerprint(evaluated_providers(), name);
}

}  // namespace vpna::ecosystem

// DNS server services for the simulator:
//
//  - AuthoritativeService: serves records for one or more zones and keeps a
//    query log (source address, name, time). The paper's recursive-origin
//    test (§5.3.2) resolves a uniquely-tagged name under a domain whose
//    authoritative server records where queries arrive from.
//
//  - RecursiveResolverService: a recursive resolver (public anycast replica
//    or VPN-provided). Resolution walks the zone registry and issues real
//    nested transactions to authoritative servers, so the authoritative
//    query log sees the *resolver's* address. An optional override hook
//    models DNS manipulation by a malicious operator.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "util/clock.h"

namespace vpna::dns {

struct ZoneRecord {
  std::vector<netsim::IpAddr> a;
  std::vector<netsim::IpAddr> aaaa;
  std::vector<std::string> txt;
};

// Maps zone apex -> authoritative nameserver address. Shared by all
// recursive resolvers in a world.
class ZoneRegistry {
 public:
  void set_authority(std::string zone, netsim::IpAddr server);

  // Longest-suffix zone match for a name.
  [[nodiscard]] std::optional<netsim::IpAddr> authority_for(
      std::string_view name) const;

  [[nodiscard]] const std::map<std::string, netsim::IpAddr>& zones() const {
    return zones_;
  }

 private:
  std::map<std::string, netsim::IpAddr> zones_;
};

struct QueryLogEntry {
  util::SimTime time;
  netsim::IpAddr source;
  std::string name;
  RrType type = RrType::kA;
};

class AuthoritativeService final : public netsim::Service {
 public:
  // `wildcard_zones`: zones for which any name resolves to the zone's apex
  // records (used by the tagged-hostname logging domain).
  void add_record(std::string name, ZoneRecord record);
  void add_wildcard_zone(std::string zone, ZoneRecord record);

  std::optional<std::string> handle(netsim::ServiceContext& ctx) override;

  [[nodiscard]] const std::vector<QueryLogEntry>& query_log() const noexcept {
    return query_log_;
  }
  void clear_log() noexcept { query_log_.clear(); }

 private:
  std::map<std::string, ZoneRecord> records_;
  std::map<std::string, ZoneRecord> wildcard_zones_;
  std::vector<QueryLogEntry> query_log_;
};

// Override hook: return a record set to answer with, or nullopt to resolve
// honestly. Used to model VPN-provided resolvers that hijack lookups.
using DnsOverrideHook =
    std::function<std::optional<ZoneRecord>(std::string_view name, RrType type)>;

class RecursiveResolverService final : public netsim::Service {
 public:
  explicit RecursiveResolverService(std::shared_ptr<const ZoneRegistry> zones);

  void set_override(DnsOverrideHook hook) { override_ = std::move(hook); }

  std::optional<std::string> handle(netsim::ServiceContext& ctx) override;

 private:
  std::shared_ptr<const ZoneRegistry> zones_;
  DnsOverrideHook override_;
};

}  // namespace vpna::dns

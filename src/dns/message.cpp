#include "dns/message.h"

#include <charconv>

#include "util/strings.h"

namespace vpna::dns {

std::string_view rrtype_name(RrType t) noexcept {
  switch (t) {
    case RrType::kA: return "A";
    case RrType::kAaaa: return "AAAA";
    case RrType::kTxt: return "TXT";
  }
  return "?";
}

std::string_view rcode_name(Rcode r) noexcept {
  switch (r) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kRefused: return "REFUSED";
  }
  return "?";
}

std::string canonical_name(std::string_view name) {
  std::string n = util::to_lower(name);
  if (!n.empty() && n.back() == '.') n.pop_back();
  return n;
}

bool in_zone(std::string_view name, std::string_view zone) {
  if (name == zone) return true;
  if (name.size() <= zone.size()) return false;
  return util::ends_with(name, zone) &&
         name[name.size() - zone.size() - 1] == '.';
}

namespace {
bool parse_u16(std::string_view s, std::uint16_t& out) {
  unsigned v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size() || v > 0xffff) return false;
  out = static_cast<std::uint16_t>(v);
  return true;
}
}  // namespace

std::string DnsQuery::encode() const {
  return util::format("DNSQ|%u|%u|", id, static_cast<unsigned>(type)) + name;
}

std::optional<DnsQuery> DnsQuery::decode(std::string_view payload) {
  if (!util::starts_with(payload, "DNSQ|")) return std::nullopt;
  const auto parts = util::split(payload.substr(5), '|');
  if (parts.size() != 3) return std::nullopt;
  DnsQuery q;
  if (!parse_u16(parts[0], q.id)) return std::nullopt;
  std::uint16_t type = 0;
  if (!parse_u16(parts[1], type) || type > 2) return std::nullopt;
  q.type = static_cast<RrType>(type);
  q.name = canonical_name(parts[2]);
  if (q.name.empty()) return std::nullopt;
  return q;
}

std::string DnsResponse::encode() const {
  std::vector<std::string> addr_strs;
  addr_strs.reserve(addresses.size());
  for (const auto& a : addresses) addr_strs.push_back(a.str());
  // TXT strings may contain '|' in principle; the simulator never emits
  // them, so a simple comma-joined encoding suffices.
  return util::format("DNSR|%u|%u|%s|%u|%s|%s", id,
                      static_cast<unsigned>(type), name.c_str(),
                      static_cast<unsigned>(rcode),
                      util::join(addr_strs, ",").c_str(),
                      util::join(texts, ",").c_str());
}

std::optional<DnsResponse> DnsResponse::decode(std::string_view payload) {
  if (!util::starts_with(payload, "DNSR|")) return std::nullopt;
  const auto parts = util::split(payload.substr(5), '|');
  if (parts.size() != 6) return std::nullopt;
  DnsResponse r;
  if (!parse_u16(parts[0], r.id)) return std::nullopt;
  std::uint16_t type = 0;
  if (!parse_u16(parts[1], type) || type > 2) return std::nullopt;
  r.type = static_cast<RrType>(type);
  r.name = canonical_name(parts[2]);
  std::uint16_t rcode = 0;
  if (!parse_u16(parts[3], rcode) || rcode > 3) return std::nullopt;
  r.rcode = static_cast<Rcode>(rcode);
  if (!parts[4].empty()) {
    for (const auto& s : util::split(parts[4], ',')) {
      const auto a = netsim::IpAddr::parse(s);
      if (!a) return std::nullopt;
      r.addresses.push_back(*a);
    }
  }
  if (!parts[5].empty())
    for (auto& s : util::split(parts[5], ',')) r.texts.push_back(std::move(s));
  return r;
}

}  // namespace vpna::dns

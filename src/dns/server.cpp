#include "dns/server.h"

#include "obs/trace.h"
#include "transport/flow.h"

namespace vpna::dns {

void ZoneRegistry::set_authority(std::string zone, netsim::IpAddr server) {
  zones_[canonical_name(zone)] = server;
}

std::optional<netsim::IpAddr> ZoneRegistry::authority_for(
    std::string_view name) const {
  const std::string n = canonical_name(name);
  const std::string* best_zone = nullptr;
  const netsim::IpAddr* best_server = nullptr;
  for (const auto& [zone, server] : zones_) {
    if (!in_zone(n, zone)) continue;
    if (best_zone == nullptr || zone.size() > best_zone->size()) {
      best_zone = &zone;
      best_server = &server;
    }
  }
  if (best_server == nullptr) return std::nullopt;
  return *best_server;
}

void AuthoritativeService::add_record(std::string name, ZoneRecord record) {
  records_[canonical_name(name)] = std::move(record);
}

void AuthoritativeService::add_wildcard_zone(std::string zone,
                                             ZoneRecord record) {
  wildcard_zones_[canonical_name(zone)] = std::move(record);
}

std::optional<std::string> AuthoritativeService::handle(
    netsim::ServiceContext& ctx) {
  const auto query = DnsQuery::decode(ctx.request.payload);
  if (!query) return std::nullopt;

  query_log_.push_back(QueryLogEntry{ctx.network.clock().now(),
                                     ctx.request.src, query->name,
                                     query->type});
  obs::count("dns.server.authoritative_queries");
  if (obs::tracing()) {
    obs::Instant serve("dns.serve", "dns");
    serve.arg("name", query->name);
    serve.arg("authority", "authoritative");
  }

  DnsResponse resp;
  resp.id = query->id;
  resp.type = query->type;
  resp.name = query->name;

  const ZoneRecord* record = nullptr;
  if (const auto it = records_.find(query->name); it != records_.end()) {
    record = &it->second;
  } else {
    for (const auto& [zone, rec] : wildcard_zones_) {
      if (in_zone(query->name, zone)) {
        record = &rec;
        break;
      }
    }
  }

  if (record == nullptr) {
    resp.rcode = Rcode::kNxDomain;
    return resp.encode();
  }
  switch (query->type) {
    case RrType::kA:
      resp.addresses = record->a;
      break;
    case RrType::kAaaa:
      resp.addresses = record->aaaa;
      break;
    case RrType::kTxt:
      resp.texts = record->txt;
      break;
  }
  if (resp.addresses.empty() && resp.texts.empty())
    resp.rcode = Rcode::kNxDomain;
  return resp.encode();
}

RecursiveResolverService::RecursiveResolverService(
    std::shared_ptr<const ZoneRegistry> zones)
    : zones_(std::move(zones)) {}

std::optional<std::string> RecursiveResolverService::handle(
    netsim::ServiceContext& ctx) {
  const auto query = DnsQuery::decode(ctx.request.payload);
  if (!query) return std::nullopt;

  obs::count("dns.server.recursive_queries");

  DnsResponse resp;
  resp.id = query->id;
  resp.type = query->type;
  resp.name = query->name;

  if (override_) {
    if (const auto forged = override_(query->name, query->type)) {
      // A manipulated answer — exactly what the §6.1 tests hunt for.
      obs::count("dns.server.forged_answers");
      if (obs::tracing()) {
        obs::Instant forged_ev("dns.forged_answer", "dns");
        forged_ev.arg("name", query->name);
      }
      switch (query->type) {
        case RrType::kA: resp.addresses = forged->a; break;
        case RrType::kAaaa: resp.addresses = forged->aaaa; break;
        case RrType::kTxt: resp.texts = forged->txt; break;
      }
      return resp.encode();
    }
  }

  const auto authority = zones_->authority_for(query->name);
  if (!authority) {
    resp.rcode = Rcode::kNxDomain;
    return resp.encode();
  }

  // Recurse: a genuine upstream query from the resolver host, so the
  // authoritative server's log records this resolver's address.
  transport::Flow upstream(ctx.network, ctx.host, netsim::Proto::kUdp,
                           *authority, netsim::kPortDns);
  const auto result = upstream.exchange(query->encode());
  if (!result.ok()) {
    resp.rcode = Rcode::kServFail;
    return resp.encode();
  }
  auto upstream_resp = DnsResponse::decode(result.reply);
  if (!upstream_resp) {
    resp.rcode = Rcode::kServFail;
    return resp.encode();
  }
  upstream_resp->id = query->id;
  return upstream_resp->encode();
}

}  // namespace vpna::dns

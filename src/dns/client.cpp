#include "dns/client.h"

#include "obs/trace.h"

namespace vpna::dns {

LookupResult query(netsim::Network& net, netsim::Host& host,
                   const netsim::IpAddr& server, std::string_view name,
                   RrType type, const transport::RetryPolicy& retry) {
  obs::Span span("dns.query", "dns");
  if (span) {
    span.arg("name", name);
    span.arg("server", server.str());
  }

  LookupResult out;
  out.server = server;

  DnsQuery q;
  q.id = static_cast<std::uint16_t>(net.rng().next() & 0xffff);
  q.type = type;
  q.name = canonical_name(name);

  transport::FlowOptions fopts;
  fopts.retry = retry;
  transport::Flow flow(net, host, netsim::Proto::kUdp, server,
                       netsim::kPortDns, fopts);
  const auto result = flow.exchange(q.encode());
  out.error = result.error;
  out.rtt_ms = result.rtt_ms;

  obs::count("dns.lookups");
  obs::observe("dns.rtt_ms", out.rtt_ms, obs::kRttBucketsMs);
  const auto finish = [&span](const LookupResult& r) {
    if (!span) return;
    span.arg("error", transport::error_name(r.error));
    span.arg("rcode", static_cast<std::int64_t>(r.rcode));
    span.arg("answers", static_cast<std::int64_t>(r.addresses.size()));
  };
  if (!result.ok()) {
    obs::count("dns.failures");
    finish(out);
    return out;
  }

  const auto resp = DnsResponse::decode(result.reply);
  if (!resp || resp->id != q.id) {
    out.error = transport::Error::parse();
    obs::count("dns.failures");
    finish(out);
    return out;
  }
  out.rcode = resp->rcode;
  out.addresses = resp->addresses;
  out.texts = resp->texts;
  out.error = resp->rcode == Rcode::kNoError
                  ? transport::Error::none()
                  : transport::Error::upstream(
                        static_cast<std::uint16_t>(resp->rcode));
  if (!out.ok()) obs::count("dns.failures");
  finish(out);
  return out;
}

LookupResult resolve_system(netsim::Network& net, netsim::Host& host,
                            std::string_view name, RrType type,
                            const transport::RetryPolicy& retry) {
  LookupResult last;
  for (const auto& server : host.dns_servers()) {
    last = query(net, host, server, name, type, retry);
    // An intact answer — even NXDOMAIN — ends the walk; transport and
    // parse failures mean the next configured server might still help.
    if (last.error.answered()) return last;
  }
  return last;  // all servers failed (or none configured: not-attempted)
}

}  // namespace vpna::dns

#include "dns/client.h"

namespace vpna::dns {

LookupResult query(netsim::Network& net, netsim::Host& host,
                   const netsim::IpAddr& server, std::string_view name,
                   RrType type) {
  LookupResult out;
  out.server = server;

  DnsQuery q;
  q.id = static_cast<std::uint16_t>(net.rng().next() & 0xffff);
  q.type = type;
  q.name = canonical_name(name);

  netsim::Packet p;
  p.dst = server;
  p.proto = netsim::Proto::kUdp;
  p.src_port = host.next_ephemeral_port();
  p.dst_port = netsim::kPortDns;
  p.payload = q.encode();

  const auto result = net.transact(host, std::move(p));
  out.transport = result.status;
  out.rtt_ms = result.rtt_ms;
  if (!result.ok()) return out;

  const auto resp = DnsResponse::decode(result.reply);
  if (!resp || resp->id != q.id) {
    out.transport = netsim::TransactStatus::kDropped;
    return out;
  }
  out.rcode = resp->rcode;
  out.addresses = resp->addresses;
  out.texts = resp->texts;
  return out;
}

LookupResult resolve_system(netsim::Network& net, netsim::Host& host,
                            std::string_view name, RrType type) {
  LookupResult last;
  for (const auto& server : host.dns_servers()) {
    last = query(net, host, server, name, type);
    if (last.transport == netsim::TransactStatus::kOk) return last;
  }
  return last;  // all servers failed (or none configured)
}

}  // namespace vpna::dns

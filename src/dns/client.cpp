#include "dns/client.h"

#include "obs/trace.h"

namespace vpna::dns {

LookupResult query(netsim::Network& net, netsim::Host& host,
                   const netsim::IpAddr& server, std::string_view name,
                   RrType type) {
  obs::Span span("dns.query", "dns");
  if (span) {
    span.arg("name", name);
    span.arg("server", server.str());
  }

  LookupResult out;
  out.server = server;

  DnsQuery q;
  q.id = static_cast<std::uint16_t>(net.rng().next() & 0xffff);
  q.type = type;
  q.name = canonical_name(name);

  netsim::Packet p;
  p.dst = server;
  p.proto = netsim::Proto::kUdp;
  p.src_port = host.next_ephemeral_port();
  p.dst_port = netsim::kPortDns;
  p.payload = q.encode();

  const auto result = net.transact(host, std::move(p));
  out.transport = result.status;
  out.rtt_ms = result.rtt_ms;

  obs::count("dns.lookups");
  obs::observe("dns.rtt_ms", out.rtt_ms, obs::kRttBucketsMs);
  const auto finish = [&span](const LookupResult& r) {
    if (!span) return;
    span.arg("transport", netsim::status_name(r.transport));
    span.arg("rcode", static_cast<std::int64_t>(r.rcode));
    span.arg("answers", static_cast<std::int64_t>(r.addresses.size()));
  };
  if (!result.ok()) {
    obs::count("dns.failures");
    finish(out);
    return out;
  }

  const auto resp = DnsResponse::decode(result.reply);
  if (!resp || resp->id != q.id) {
    out.transport = netsim::TransactStatus::kDropped;
    obs::count("dns.failures");
    finish(out);
    return out;
  }
  out.rcode = resp->rcode;
  out.addresses = resp->addresses;
  out.texts = resp->texts;
  if (!out.ok()) obs::count("dns.failures");
  finish(out);
  return out;
}

LookupResult resolve_system(netsim::Network& net, netsim::Host& host,
                            std::string_view name, RrType type) {
  LookupResult last;
  for (const auto& server : host.dns_servers()) {
    last = query(net, host, server, name, type);
    if (last.transport == netsim::TransactStatus::kOk) return last;
  }
  return last;  // all servers failed (or none configured)
}

}  // namespace vpna::dns

// DNS message model. The simulator uses a compact text wire format instead
// of RFC 1035 binary framing; the semantics the measurement suite depends on
// (query/response matching, record types, rcodes, resolver identity) are
// preserved exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netsim/ip.h"

namespace vpna::dns {

enum class RrType : std::uint8_t { kA, kAaaa, kTxt };
enum class Rcode : std::uint8_t { kNoError, kNxDomain, kServFail, kRefused };

[[nodiscard]] std::string_view rrtype_name(RrType t) noexcept;
[[nodiscard]] std::string_view rcode_name(Rcode r) noexcept;

struct DnsQuery {
  std::uint16_t id = 0;
  RrType type = RrType::kA;
  std::string name;  // fully-qualified, lowercase, no trailing dot

  [[nodiscard]] std::string encode() const;
  static std::optional<DnsQuery> decode(std::string_view payload);
};

struct DnsResponse {
  std::uint16_t id = 0;
  RrType type = RrType::kA;
  std::string name;
  Rcode rcode = Rcode::kNoError;
  std::vector<netsim::IpAddr> addresses;  // A/AAAA answers
  std::vector<std::string> texts;         // TXT answers

  [[nodiscard]] std::string encode() const;
  static std::optional<DnsResponse> decode(std::string_view payload);
};

// Lowercases and strips a trailing dot; DNS names compare case-insensitively.
[[nodiscard]] std::string canonical_name(std::string_view name);

// True if `name` equals `zone` or is a subdomain of it.
[[nodiscard]] bool in_zone(std::string_view name, std::string_view zone);

}  // namespace vpna::dns

// Client-side DNS helpers: issue a query to a specific server, or resolve
// through the host's configured system resolvers (the path a leaking VPN
// client fails to redirect). Queries ride the transport layer: one
// `transport::Flow` per query, failures reported in the unified
// `transport::Error` taxonomy.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dns/message.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "transport/error.h"
#include "transport/flow.h"

namespace vpna::dns {

struct LookupResult {
  // Starts as not-attempted: a lookup that was never issued is now
  // distinguishable from one the packet plane failed to route.
  transport::Error error;
  Rcode rcode = Rcode::kServFail;
  std::vector<netsim::IpAddr> addresses;
  std::vector<std::string> texts;
  netsim::IpAddr server;  // the resolver that answered
  double rtt_ms = 0.0;

  [[nodiscard]] bool ok() const noexcept { return error.ok(); }
};

// Queries one resolver directly. `retry` defaults to a single attempt, in
// which case the wire traffic is identical to the pre-transport client.
[[nodiscard]] LookupResult query(netsim::Network& net, netsim::Host& host,
                                 const netsim::IpAddr& server,
                                 std::string_view name, RrType type,
                                 const transport::RetryPolicy& retry = {});

// Resolves through the host's configured DNS servers, in order, returning
// the first answer that came back intact (mirrors the OS stub resolver).
[[nodiscard]] LookupResult resolve_system(
    netsim::Network& net, netsim::Host& host, std::string_view name,
    RrType type, const transport::RetryPolicy& retry = {});

}  // namespace vpna::dns

// Client-side DNS helpers: issue a query to a specific server, or resolve
// through the host's configured system resolvers (the path a leaking VPN
// client fails to redirect).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dns/message.h"
#include "netsim/host.h"
#include "netsim/network.h"

namespace vpna::dns {

struct LookupResult {
  netsim::TransactStatus transport = netsim::TransactStatus::kNoRoute;
  Rcode rcode = Rcode::kServFail;
  std::vector<netsim::IpAddr> addresses;
  std::vector<std::string> texts;
  netsim::IpAddr server;  // the resolver that answered
  double rtt_ms = 0.0;

  [[nodiscard]] bool ok() const noexcept {
    return transport == netsim::TransactStatus::kOk && rcode == Rcode::kNoError;
  }
};

// Queries one resolver directly.
[[nodiscard]] LookupResult query(netsim::Network& net, netsim::Host& host,
                                 const netsim::IpAddr& server,
                                 std::string_view name, RrType type);

// Resolves through the host's configured DNS servers, in order, returning
// the first usable answer (mirrors the OS stub resolver).
[[nodiscard]] LookupResult resolve_system(netsim::Network& net,
                                          netsim::Host& host,
                                          std::string_view name, RrType type);

}  // namespace vpna::dns

#include "core/report_codec.h"

#include <cstring>

#include "core/parallel_campaign.h"
#include "faults/profile.h"
#include "util/rng.h"
#include "util/strings.h"

namespace vpna::core {

namespace {

// ---- writer -----------------------------------------------------------------

class Writer {
 public:
  explicit Writer(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  // Two's-complement via u32/u64 so negative values round-trip exactly.
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  // Bit-exact: the payload must reproduce NaNs and signed zeros as the
  // runner produced them, not as printf would render them.
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  void addr(const netsim::IpAddr& a) {
    u8(static_cast<std::uint8_t>(a.family()));
    for (auto b : a.bytes()) u8(b);
  }

 private:
  std::string& out_;
};

// ---- reader -----------------------------------------------------------------

// Every accessor returns false on exhausted input and leaves the cursor
// unspecified; callers chain with && so the first failure aborts decode.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] bool done() const { return off_ == bytes_.size(); }

  bool u8(std::uint8_t* v) {
    if (bytes_.size() - off_ < 1) return false;
    *v = static_cast<std::uint8_t>(bytes_[off_++]);
    return true;
  }
  bool u16(std::uint16_t* v) {
    if (bytes_.size() - off_ < 2) return false;
    *v = 0;
    for (int i = 1; i >= 0; --i)
      *v = static_cast<std::uint16_t>((*v << 8) |
                                      static_cast<std::uint8_t>(bytes_[off_ + i]));
    off_ += 2;
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (bytes_.size() - off_ < 4) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i)
      *v = (*v << 8) | static_cast<std::uint8_t>(bytes_[off_ + i]);
    off_ += 4;
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (bytes_.size() - off_ < 8) return false;
    *v = 0;
    for (int i = 7; i >= 0; --i)
      *v = (*v << 8) | static_cast<std::uint8_t>(bytes_[off_ + i]);
    off_ += 8;
    return true;
  }
  bool i32(std::int32_t* v) {
    std::uint32_t raw = 0;
    if (!u32(&raw)) return false;
    *v = static_cast<std::int32_t>(raw);
    return true;
  }
  // Strict: only 0/1 are valid — a flipped bit in a bool is corruption,
  // not a new truth value.
  bool boolean(bool* v) {
    std::uint8_t raw = 0;
    if (!u8(&raw) || raw > 1) return false;
    *v = raw == 1;
    return true;
  }
  bool f64(double* v) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
  }
  bool str(std::string* s) {
    std::uint32_t len = 0;
    if (!u32(&len)) return false;
    if (bytes_.size() - off_ < len) return false;
    s->assign(bytes_.data() + off_, len);
    off_ += len;
    return true;
  }
  // Range-validated enum byte: `max` is the last valid enumerator value.
  template <typename E>
  bool enum8(E* e, std::uint8_t max) {
    std::uint8_t raw = 0;
    if (!u8(&raw) || raw > max) return false;
    *e = static_cast<E>(raw);
    return true;
  }
  bool addr(netsim::IpAddr* a) {
    std::uint8_t family = 0;
    if (!u8(&family) || family > 1) return false;
    std::array<std::uint8_t, 16> raw{};
    for (auto& b : raw)
      if (!u8(&b)) return false;
    if (family == static_cast<std::uint8_t>(netsim::IpFamily::kV6)) {
      *a = netsim::IpAddr::v6(raw);
    } else {
      // v4 storage is the first 4 bytes; the rest must be zero in any
      // artifact we wrote ourselves.
      for (std::size_t i = 4; i < raw.size(); ++i)
        if (raw[i] != 0) return false;
      *a = netsim::IpAddr::v4(raw[0], raw[1], raw[2], raw[3]);
    }
    return true;
  }
  // Element-count guard for vectors: each element of any encoded type
  // costs at least one byte, so a count beyond the remaining bytes can
  // only be corruption — reject before reserving memory for it.
  bool count(std::uint32_t* n) {
    if (!u32(n)) return false;
    return *n <= bytes_.size() - off_;
  }

 private:
  std::string_view bytes_;
  std::size_t off_ = 0;
};

// ---- field-by-field encode/decode pairs -------------------------------------
// Kept adjacent per struct so a field added to one side without the other
// is visible in review; the round-trip fuzz suite catches the rest.

void encode_error(Writer& w, const transport::Error& e) {
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.u8(static_cast<std::uint8_t>(e.status));
  w.u16(e.code);
}

bool decode_error(Reader& r, transport::Error* e) {
  return r.enum8(&e->kind,
                 static_cast<std::uint8_t>(transport::ErrorKind::kRedirectLimit)) &&
         r.enum8(&e->status,
                 static_cast<std::uint8_t>(netsim::TransactStatus::kTtlExpired)) &&
         r.u16(&e->code);
}

void encode_degradation(Writer& w, const Degradation& d) {
  w.boolean(d.degraded);
  w.str(d.stage);
  encode_error(w, d.error);
  w.i32(d.attempts);
  w.u64(d.faults_seen);
}

bool decode_degradation(Reader& r, Degradation* d) {
  return r.boolean(&d->degraded) && r.str(&d->stage) &&
         decode_error(r, &d->error) && r.i32(&d->attempts) &&
         r.u64(&d->faults_seen);
}

void encode_metadata(Writer& w, const MetadataSnapshot& m) {
  w.str(m.routing_table);
  w.u32(static_cast<std::uint32_t>(m.dns_resolvers.size()));
  for (const auto& s : m.dns_resolvers) w.str(s);
  w.u32(static_cast<std::uint32_t>(m.interfaces.size()));
  for (const auto& s : m.interfaces) w.str(s);
}

bool decode_metadata(Reader& r, MetadataSnapshot* m) {
  if (!r.str(&m->routing_table)) return false;
  std::uint32_t n = 0;
  if (!r.count(&n)) return false;
  m->dns_resolvers.resize(n);
  for (auto& s : m->dns_resolvers)
    if (!r.str(&s)) return false;
  if (!r.count(&n)) return false;
  m->interfaces.resize(n);
  for (auto& s : m->interfaces)
    if (!r.str(&s)) return false;
  return true;
}

void encode_dns_manipulation(Writer& w, const DnsManipulationResult& v) {
  w.i32(v.names_tested);
  w.u32(static_cast<std::uint32_t>(v.mismatches.size()));
  for (const auto& m : v.mismatches) {
    w.str(m.hostname);
    w.str(m.via_default);
    w.str(m.via_google);
    w.str(m.default_owner);
    w.str(m.google_owner);
    w.boolean(m.suspicious);
  }
}

bool decode_dns_manipulation(Reader& r, DnsManipulationResult* v) {
  if (!r.i32(&v->names_tested)) return false;
  std::uint32_t n = 0;
  if (!r.count(&n)) return false;
  v->mismatches.resize(n);
  for (auto& m : v->mismatches) {
    if (!(r.str(&m.hostname) && r.str(&m.via_default) && r.str(&m.via_google) &&
          r.str(&m.default_owner) && r.str(&m.google_owner) &&
          r.boolean(&m.suspicious)))
      return false;
  }
  return true;
}

void encode_dom_collection(Writer& w, const DomCollectionResult& v) {
  w.u32(static_cast<std::uint32_t>(v.pages.size()));
  for (const auto& p : v.pages) {
    w.str(p.hostname);
    w.boolean(p.load_ok);
    w.u8(static_cast<std::uint8_t>(p.redirect));
    w.str(p.final_host);
    w.boolean(p.dom_matches_groundtruth);
    w.u32(static_cast<std::uint32_t>(p.unexpected_request_urls.size()));
    for (const auto& u : p.unexpected_request_urls) w.str(u);
  }
}

bool decode_dom_collection(Reader& r, DomCollectionResult* v) {
  std::uint32_t n = 0;
  if (!r.count(&n)) return false;
  v->pages.resize(n);
  for (auto& p : v->pages) {
    if (!(r.str(&p.hostname) && r.boolean(&p.load_ok) &&
          r.enum8(&p.redirect,
                  static_cast<std::uint8_t>(RedirectClass::kUnrelated)) &&
          r.str(&p.final_host) && r.boolean(&p.dom_matches_groundtruth)))
      return false;
    std::uint32_t urls = 0;
    if (!r.count(&urls)) return false;
    p.unexpected_request_urls.resize(urls);
    for (auto& u : p.unexpected_request_urls)
      if (!r.str(&u)) return false;
  }
  return true;
}

void encode_tls(Writer& w, const TlsTestResult& v) {
  w.u32(static_cast<std::uint32_t>(v.hosts.size()));
  for (const auto& h : v.hosts) {
    w.str(h.hostname);
    w.boolean(h.handshake_ok);
    w.boolean(h.chain_valid);
    w.boolean(h.fingerprint_matches);
    w.str(h.presented_issuer);
    w.i32(h.http_status);
    w.boolean(h.upgraded_to_https);
    w.boolean(h.upgrade_stripped);
    w.boolean(h.blocked_403);
    w.boolean(h.empty_200);
  }
}

bool decode_tls(Reader& r, TlsTestResult* v) {
  std::uint32_t n = 0;
  if (!r.count(&n)) return false;
  v->hosts.resize(n);
  for (auto& h : v->hosts) {
    if (!(r.str(&h.hostname) && r.boolean(&h.handshake_ok) &&
          r.boolean(&h.chain_valid) && r.boolean(&h.fingerprint_matches) &&
          r.str(&h.presented_issuer) && r.i32(&h.http_status) &&
          r.boolean(&h.upgraded_to_https) && r.boolean(&h.upgrade_stripped) &&
          r.boolean(&h.blocked_403) && r.boolean(&h.empty_200)))
      return false;
  }
  return true;
}

void encode_recursive_origin(Writer& w, const RecursiveDnsOriginResult& v) {
  w.boolean(v.resolved);
  w.str(v.tag);
  w.boolean(v.resolver_seen.has_value());
  if (v.resolver_seen) w.addr(*v.resolver_seen);
  w.str(v.resolver_owner);
}

bool decode_recursive_origin(Reader& r, RecursiveDnsOriginResult* v) {
  if (!(r.boolean(&v->resolved) && r.str(&v->tag))) return false;
  bool has = false;
  if (!r.boolean(&has)) return false;
  if (has) {
    netsim::IpAddr a;
    if (!r.addr(&a)) return false;
    v->resolver_seen = a;
  } else {
    v->resolver_seen.reset();
  }
  return r.str(&v->resolver_owner);
}

void encode_pings(Writer& w, const PingProbeResult& v) {
  w.u32(static_cast<std::uint32_t>(v.targets.size()));
  for (const auto& t : v.targets) {
    w.str(t.name);
    w.addr(t.addr);
    w.boolean(t.rtt_ms.has_value());
    if (t.rtt_ms) w.f64(*t.rtt_ms);
  }
  w.u32(static_cast<std::uint32_t>(v.root_traceroute.size()));
  for (const auto& h : v.root_traceroute) {
    w.i32(h.ttl);
    w.boolean(h.router.has_value());
    if (h.router) w.addr(*h.router);
    w.f64(h.rtt_ms);
  }
}

bool decode_pings(Reader& r, PingProbeResult* v) {
  std::uint32_t n = 0;
  if (!r.count(&n)) return false;
  v->targets.resize(n);
  for (auto& t : v->targets) {
    if (!(r.str(&t.name) && r.addr(&t.addr))) return false;
    bool has = false;
    if (!r.boolean(&has)) return false;
    if (has) {
      double rtt = 0.0;
      if (!r.f64(&rtt)) return false;
      t.rtt_ms = rtt;
    } else {
      t.rtt_ms.reset();
    }
  }
  if (!r.count(&n)) return false;
  v->root_traceroute.resize(n);
  for (auto& h : v->root_traceroute) {
    if (!r.i32(&h.ttl)) return false;
    bool has = false;
    if (!r.boolean(&has)) return false;
    if (has) {
      netsim::IpAddr a;
      if (!r.addr(&a)) return false;
      h.router = a;
    } else {
      h.router.reset();
    }
    if (!r.f64(&h.rtt_ms)) return false;
  }
  return true;
}

void encode_geo_api(Writer& w, const GeoApiResult& v) {
  w.boolean(v.answered);
  w.str(v.country_code);
  w.str(v.city);
}

bool decode_geo_api(Reader& r, GeoApiResult* v) {
  return r.boolean(&v->answered) && r.str(&v->country_code) && r.str(&v->city);
}

void encode_proxy(Writer& w, const ProxyDetectionResult& v) {
  w.boolean(v.request_succeeded);
  w.boolean(v.proxy_detected);
  w.boolean(v.headers_added);
  w.boolean(v.headers_rewritten);
  w.str(v.sent);
  w.str(v.received);
}

bool decode_proxy(Reader& r, ProxyDetectionResult* v) {
  return r.boolean(&v->request_succeeded) && r.boolean(&v->proxy_detected) &&
         r.boolean(&v->headers_added) && r.boolean(&v->headers_rewritten) &&
         r.str(&v->sent) && r.str(&v->received);
}

void encode_dns_leak(Writer& w, const DnsLeakResult& v) {
  w.i32(v.queries_issued);
  w.i32(v.plaintext_dns_on_physical_interface);
  w.i32(v.queries_failed);
  encode_error(w, v.last_error);
}

bool decode_dns_leak(Reader& r, DnsLeakResult* v) {
  return r.i32(&v->queries_issued) &&
         r.i32(&v->plaintext_dns_on_physical_interface) &&
         r.i32(&v->queries_failed) && decode_error(r, &v->last_error);
}

void encode_ipv6_leak(Writer& w, const Ipv6LeakResult& v) {
  w.i32(v.attempts);
  w.i32(v.v6_packets_on_physical_interface);
  w.i32(v.v6_connections_succeeded_outside_tunnel);
  w.i32(v.lookup_failures);
  w.i32(v.connect_failures);
  encode_error(w, v.last_error);
}

bool decode_ipv6_leak(Reader& r, Ipv6LeakResult* v) {
  return r.i32(&v->attempts) && r.i32(&v->v6_packets_on_physical_interface) &&
         r.i32(&v->v6_connections_succeeded_outside_tunnel) &&
         r.i32(&v->lookup_failures) && r.i32(&v->connect_failures) &&
         decode_error(r, &v->last_error);
}

void encode_tunnel_failure(Writer& w, const TunnelFailureResult& v) {
  w.boolean(v.failure_induced);
  w.f64(v.window_seconds);
  w.i32(v.probes_sent);
  w.i32(v.probes_escaped_clear);
  w.i32(v.probes_failed);
  encode_error(w, v.last_probe_error);
  w.u8(static_cast<std::uint8_t>(v.final_state));
}

bool decode_tunnel_failure(Reader& r, TunnelFailureResult* v) {
  return r.boolean(&v->failure_induced) && r.f64(&v->window_seconds) &&
         r.i32(&v->probes_sent) && r.i32(&v->probes_escaped_clear) &&
         r.i32(&v->probes_failed) && decode_error(r, &v->last_probe_error) &&
         r.enum8(&v->final_state,
                 static_cast<std::uint8_t>(vpn::ClientState::kTunnelFailedOpen));
}

void encode_pcap(Writer& w, const PcapScanResult& v) {
  w.u64(v.packets_scanned);
  w.i32(v.unexpected_inbound_dns);
  w.i32(v.unattributed_outbound_dns);
}

bool decode_pcap(Reader& r, PcapScanResult* v) {
  std::uint64_t scanned = 0;
  if (!r.u64(&scanned)) return false;
  v->packets_scanned = static_cast<std::size_t>(scanned);
  return r.i32(&v->unexpected_inbound_dns) &&
         r.i32(&v->unattributed_outbound_dns);
}

void encode_speed_test(Writer& w, const SpeedTestResult& v) {
  w.boolean(v.ran);
  w.f64(v.goodput_mbps);
  w.f64(v.base_rtt_ms);
  w.f64(v.min_rtt_ms);
  w.f64(v.queue_delay_mean_ms);
  w.f64(v.queue_delay_max_ms);
  w.f64(v.queue_delay_p50_ms);
  w.f64(v.queue_delay_p90_ms);
  w.f64(v.queue_delay_p99_ms);
  w.f64(v.loss_rate);
  w.f64(v.ecn_rate);
  w.u64(v.sent_packets);
  w.u64(v.delivered_packets);
  w.u64(v.queue_drops);
  w.u64(v.fault_drops);
  w.u64(v.ecn_marks);
  w.i32(v.cwnd_decreases);
}

bool decode_speed_test(Reader& r, SpeedTestResult* v) {
  return r.boolean(&v->ran) && r.f64(&v->goodput_mbps) &&
         r.f64(&v->base_rtt_ms) && r.f64(&v->min_rtt_ms) &&
         r.f64(&v->queue_delay_mean_ms) && r.f64(&v->queue_delay_max_ms) &&
         r.f64(&v->queue_delay_p50_ms) && r.f64(&v->queue_delay_p90_ms) &&
         r.f64(&v->queue_delay_p99_ms) && r.f64(&v->loss_rate) &&
         r.f64(&v->ecn_rate) && r.u64(&v->sent_packets) &&
         r.u64(&v->delivered_packets) && r.u64(&v->queue_drops) &&
         r.u64(&v->fault_drops) && r.u64(&v->ecn_marks) &&
         r.i32(&v->cwnd_decreases);
}

void encode_vantage_point(Writer& w, const VantagePointReport& vp) {
  w.str(vp.provider);
  w.str(vp.vantage_id);
  w.str(vp.advertised_country);
  w.str(vp.advertised_city);
  w.addr(vp.egress_addr);
  w.boolean(vp.connected);
  encode_degradation(w, vp.degradation);
  encode_metadata(w, vp.metadata);
  encode_dns_manipulation(w, vp.dns_manipulation);
  encode_dom_collection(w, vp.dom_collection);
  encode_tls(w, vp.tls);
  encode_recursive_origin(w, vp.recursive_origin);
  encode_pings(w, vp.pings);
  encode_geo_api(w, vp.geo_api);
  encode_proxy(w, vp.proxy);
  encode_dns_leak(w, vp.dns_leak);
  encode_ipv6_leak(w, vp.ipv6_leak);
  encode_tunnel_failure(w, vp.tunnel_failure);
  encode_pcap(w, vp.pcap);
  encode_speed_test(w, vp.speed_test);
}

bool decode_vantage_point(Reader& r, VantagePointReport* vp) {
  return r.str(&vp->provider) && r.str(&vp->vantage_id) &&
         r.str(&vp->advertised_country) && r.str(&vp->advertised_city) &&
         r.addr(&vp->egress_addr) && r.boolean(&vp->connected) &&
         decode_degradation(r, &vp->degradation) &&
         decode_metadata(r, &vp->metadata) &&
         decode_dns_manipulation(r, &vp->dns_manipulation) &&
         decode_dom_collection(r, &vp->dom_collection) &&
         decode_tls(r, &vp->tls) &&
         decode_recursive_origin(r, &vp->recursive_origin) &&
         decode_pings(r, &vp->pings) && decode_geo_api(r, &vp->geo_api) &&
         decode_proxy(r, &vp->proxy) && decode_dns_leak(r, &vp->dns_leak) &&
         decode_ipv6_leak(r, &vp->ipv6_leak) &&
         decode_tunnel_failure(r, &vp->tunnel_failure) &&
         decode_pcap(r, &vp->pcap) && decode_speed_test(r, &vp->speed_test);
}

}  // namespace

std::string encode_provider_report(const ProviderReport& report) {
  std::string out;
  out.reserve(4096);
  Writer w(out);
  w.u32(kShardReportFormatVersion);
  w.str(report.provider);
  w.u8(static_cast<std::uint8_t>(report.subscription));
  w.boolean(report.has_custom_client);
  w.boolean(report.quarantined);
  w.u32(static_cast<std::uint32_t>(report.vantage_points.size()));
  for (const auto& vp : report.vantage_points) encode_vantage_point(w, vp);
  return out;
}

bool decode_provider_report(std::string_view bytes, ProviderReport* out) {
  Reader r(bytes);
  std::uint32_t version = 0;
  if (!r.u32(&version) || version != kShardReportFormatVersion) return false;
  if (!r.str(&out->provider)) return false;
  if (!r.enum8(&out->subscription,
               static_cast<std::uint8_t>(vpn::SubscriptionType::kFree)))
    return false;
  if (!(r.boolean(&out->has_custom_client) && r.boolean(&out->quarantined)))
    return false;
  std::uint32_t n = 0;
  if (!r.count(&n)) return false;
  out->vantage_points.resize(n);
  for (auto& vp : out->vantage_points)
    if (!decode_vantage_point(r, &vp)) return false;
  // Trailing bytes mean the artifact was written by something else (or
  // damaged in a length-preserving way the checksum should have caught);
  // a strict format rejects them.
  return r.done();
}

std::string encode_shard_census(const ScaledShardCensus& census) {
  std::string out;
  out.reserve(64 + census.provider.size());
  Writer w(out);
  w.u32(kShardCensusFormatVersion);
  w.str(census.provider);
  w.u32(census.vantage_points);
  w.u32(census.hosts);
  w.u32(census.clients);
  w.u32(census.modeled_subscribers);
  w.u64(census.address_fingerprint);
  return out;
}

bool decode_shard_census(std::string_view bytes, ScaledShardCensus* out) {
  Reader r(bytes);
  std::uint32_t version = 0;
  if (!r.u32(&version) || version != kShardCensusFormatVersion) return false;
  return r.str(&out->provider) && r.u32(&out->vantage_points) &&
         r.u32(&out->hosts) && r.u32(&out->clients) &&
         r.u32(&out->modeled_subscribers) && r.u64(&out->address_fingerprint) &&
         r.done();
}

std::uint64_t runner_options_fingerprint(const RunnerOptions& options) {
  // Canonical field-separated serialization, versioned so adding a future
  // option moves every fingerprint instead of silently aliasing old ones.
  std::string canon = "vpna-runner-options-v1\x1f";
  const auto field = [&canon](std::string_view v) {
    canon.append(v);
    canon.push_back('\x1f');
  };
  field(util::format("%zu", options.vantage_points_per_provider));
  field(options.respect_client_model ? "1" : "0");
  field(options.run_web_suites ? "1" : "0");
  field(util::format("%.17g", options.tunnel_failure_window_s));
  field(util::format("%d", options.connect_attempts));
  field(faults::profile_name(options.fault_profile));
  field(options.speed_test ? "1" : "0");
  field(util::format("%.17g", options.speed_test_options.duration_s));
  field(util::format("%u", options.speed_test_options.packet_bytes));
  return util::fnv1a(canon);
}

}  // namespace vpna::core

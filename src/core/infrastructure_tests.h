// Infrastructure-inference tests (paper §5.3.2):
//
//  - Recursive DNS origin: resolve a uniquely-tagged name under the probe
//    zone and read back, from the authoritative log, which resolver
//    actually performed the recursion.
//  - Ping & traceroute collection: RTTs to anycast public resolvers, the
//    root-server letters, and the 50 anchors; traceroute toward a root.
//  - Geolocation API: ask the measurement-backed geolocation endpoint
//    where the egress address appears to be.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "inet/world.h"

namespace vpna::core {

struct RecursiveDnsOriginResult {
  bool resolved = false;
  std::string tag;                     // the unique probe label used
  std::optional<netsim::IpAddr> resolver_seen;  // who hit the authority
  std::string resolver_owner;          // WHOIS org of that resolver
};

[[nodiscard]] RecursiveDnsOriginResult run_recursive_dns_origin_test(
    inet::World& world, netsim::Host& client, std::string tag);

struct PingTarget {
  std::string name;     // "anchor:Oslo", "root:D", "gdns"
  netsim::IpAddr addr;
  std::optional<double> rtt_ms;
};

struct PingProbeResult {
  std::vector<PingTarget> targets;     // anchors + roots + resolvers
  std::vector<netsim::TracerouteHop> root_traceroute;  // toward D-root
  // RTT vector over the anchor set only, ordered by anchor index; missing
  // probes are NaN. This is the Figure 9 series.
  [[nodiscard]] std::vector<double> anchor_series() const;
};

[[nodiscard]] PingProbeResult run_ping_probe_test(inet::World& world,
                                                  netsim::Host& client);

struct GeoApiResult {
  bool answered = false;
  std::string country_code;
  std::string city;
};

[[nodiscard]] GeoApiResult run_geo_api_test(inet::World& world,
                                            netsim::Host& client);

}  // namespace vpna::core

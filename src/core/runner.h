// Orchestration: runs the full §5.3 suite against one vantage point of one
// provider from a freshly-restored measurement VM state, and aggregates
// per-provider reports across vantage points — the simulated counterpart
// of the paper's macOS-VM testing workflow.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/groundtruth.h"
#include "core/infrastructure_tests.h"
#include "core/leakage_tests.h"
#include "core/manipulation_tests.h"
#include "core/proxy_detection.h"
#include "core/speed_test.h"
#include "ecosystem/testbed.h"
#include "faults/profile.h"
#include "transport/error.h"

namespace vpna::core {

// Host configuration snapshot collected alongside each run (§5.3.4).
struct MetadataSnapshot {
  std::string routing_table;
  std::vector<std::string> dns_resolvers;
  std::vector<std::string> interfaces;
};

// Structured record of graceful degradation: set when a fault profile is
// active and the vantage point exhausted its retries at some stage of the
// suite. Off-profile runs never set this — a FlakyService connect failure
// under FaultProfile::kOff reports exactly as it always has.
struct Degradation {
  bool degraded = false;
  std::string stage;       // which stage gave up, e.g. "connect"
  transport::Error error;  // terminal error of the last attempt
  int attempts = 0;        // attempts spent before giving up
  // Fault attribution: injected-fault count (`faults.*` obs counters) this
  // shard accumulated during the degraded stage. 0 when no meter is bound.
  std::uint64_t faults_seen = 0;
};

// Results of the full suite against one vantage point.
struct VantagePointReport {
  std::string provider;
  std::string vantage_id;
  std::string advertised_country;
  std::string advertised_city;
  netsim::IpAddr egress_addr;
  bool connected = false;
  Degradation degradation;

  MetadataSnapshot metadata;
  DnsManipulationResult dns_manipulation;
  DomCollectionResult dom_collection;
  TlsTestResult tls;
  RecursiveDnsOriginResult recursive_origin;
  PingProbeResult pings;
  GeoApiResult geo_api;
  ProxyDetectionResult proxy;
  DnsLeakResult dns_leak;
  Ipv6LeakResult ipv6_leak;
  TunnelFailureResult tunnel_failure;
  PcapScanResult pcap;
  // Performance suite (ran=false unless the campaign enabled speed tests
  // and the shard world has link capacities provisioned).
  SpeedTestResult speed_test;
};

struct ProviderReport {
  std::string provider;
  vpn::SubscriptionType subscription = vpn::SubscriptionType::kPaid;
  bool has_custom_client = true;
  // Shard-level quarantine: the campaign engine ran out of shard attempts
  // under an active fault profile and kept a structured placeholder instead
  // of failing the run (vantage_points is empty in that case).
  bool quarantined = false;
  std::vector<VantagePointReport> vantage_points;

  [[nodiscard]] bool degraded() const {
    if (quarantined) return true;
    for (const auto& vp : vantage_points)
      if (vp.degradation.degraded) return true;
    return false;
  }

  [[nodiscard]] bool any_dns_leak() const;
  [[nodiscard]] bool any_ipv6_leak() const;
  [[nodiscard]] bool any_tunnel_failure_leak() const;
  [[nodiscard]] bool any_proxy_detected() const;
  [[nodiscard]] bool any_dom_modification() const;
};

struct RunnerOptions {
  // Max vantage points exercised per provider (the paper tested ~5 per
  // manually-driven provider). 0 = all.
  std::size_t vantage_points_per_provider = 5;
  // Leak tests only apply to first-party clients (§6.5); set false to
  // force-run them anyway.
  bool respect_client_model = true;
  // Run the expensive page/TLS collection suites.
  bool run_web_suites = true;
  double tunnel_failure_window_s = 180.0;
  // Connection attempts per vantage point before giving up. The paper's
  // flaky endpoints (§5.2) required repeated collection attempts.
  int connect_attempts = 3;
  // Active fault profile. kOff leaves every artifact byte-identical to a
  // build without the fault plane; flaky/hostile install deterministic
  // fault schedules per shard, enable transport retries/fallback, and turn
  // exhausted retries into structured degradation instead of hard failure.
  faults::FaultProfile fault_profile = faults::FaultProfile::kOff;
  // Run the capacity-aware speed-test suite per vantage point. Requires
  // link capacities on the shard world (the campaign engine provisions
  // them via ecosystem::apply_link_capacities when this is set); without
  // capacities the suite reports ran=false for every vantage point.
  bool speed_test = false;
  SpeedTestOptions speed_test_options;
};

class TestRunner {
 public:
  TestRunner(ecosystem::Testbed& testbed, RunnerOptions options = {});

  // Collects ground truth from the clean client (call once, like the
  // paper's periodic university-IP collection).
  void collect_ground_truth();
  [[nodiscard]] const GroundTruth& ground_truth() const { return truth_; }

  // Runs the suite against every (selected) vantage point of a provider.
  [[nodiscard]] ProviderReport run_provider(
      const vpn::DeployedProvider& provider);

  // Runs the full campaign over every deployed provider.
  [[nodiscard]] std::vector<ProviderReport> run_all();

 private:
  VantagePointReport run_vantage_point(const vpn::DeployedProvider& provider,
                                       const vpn::DeployedVantagePoint& vp,
                                       std::uint32_t session);

  ecosystem::Testbed& testbed_;
  RunnerOptions options_;
  GroundTruth truth_;
  std::uint32_t next_session_ = 1;
};

}  // namespace vpna::core

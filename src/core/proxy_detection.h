// Header-based transparent-proxy detection (paper §6.2.1) and the
// pcap-based unexpected-traffic scan (§5.3.4 / §6.6): compare the bytes a
// client sent against what the reflection server received, and scan the
// hardware-interface capture for traffic that indicates the client is
// being used as an egress for other users (P2P relaying).
#pragma once

#include <string>
#include <vector>

#include "inet/world.h"

namespace vpna::core {

struct ProxyDetectionResult {
  bool request_succeeded = false;
  bool proxy_detected = false;       // received bytes differ from sent bytes
  bool headers_added = false;        // extra headers present (announcing proxy)
  bool headers_rewritten = false;    // same set, different bytes (silent proxy)
  std::string sent;
  std::string received;
};

// Sends a distinctively-formatted request to the reflection endpoint and
// byte-compares the echo.
[[nodiscard]] ProxyDetectionResult run_proxy_detection_test(
    inet::World& world, netsim::Host& client);

struct PcapScanResult {
  std::size_t packets_scanned = 0;
  // Inbound DNS queries from strangers: the smoking gun for our address
  // being used as a vantage point for other users' traffic.
  int unexpected_inbound_dns = 0;
  // Outbound DNS on eth0 not attributable to our own probes (the paper
  // attributes its few hits to silent tunnel failures).
  int unattributed_outbound_dns = 0;
  [[nodiscard]] bool p2p_relaying_suspected() const {
    return unexpected_inbound_dns > 0;
  }
};

// Scans the client's full capture buffer.
[[nodiscard]] PcapScanResult run_pcap_scan(const netsim::Host& client);

}  // namespace vpna::core

#include "core/shard_supervisor.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include "core/worker_protocol.h"
#include "util/subprocess.h"

namespace vpna::core {

namespace {

double mono_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// VPNA_CRASH_SUPERVISOR=<n>[:kill|segv|exit] — self-destruct after the
// n-th terminal shard outcome (journal already flushed for it).
struct SupervisorCrash {
  std::size_t after = 0;
  enum class Mode : std::uint8_t { kKill, kSegv, kExit } mode = Mode::kKill;
};

std::optional<SupervisorCrash> parse_supervisor_crash() {
  const char* spec = std::getenv("VPNA_CRASH_SUPERVISOR");
  if (spec == nullptr || *spec == '\0') return std::nullopt;
  SupervisorCrash c;
  char* end = nullptr;
  c.after = static_cast<std::size_t>(std::strtoul(spec, &end, 10));
  if (end == spec) return std::nullopt;
  if (*end == ':') {
    const std::string mode(end + 1);
    if (mode == "kill") c.mode = SupervisorCrash::Mode::kKill;
    else if (mode == "segv") c.mode = SupervisorCrash::Mode::kSegv;
    else if (mode == "exit") c.mode = SupervisorCrash::Mode::kExit;
    else return std::nullopt;
  }
  return c;
}

[[noreturn]] void execute_supervisor_crash(const SupervisorCrash& c) {
  switch (c.mode) {
    case SupervisorCrash::Mode::kKill: ::raise(SIGKILL); break;
    case SupervisorCrash::Mode::kSegv: ::raise(SIGSEGV); break;
    case SupervisorCrash::Mode::kExit: ::_exit(42);
  }
  ::_exit(42);
}

struct Work {
  std::size_t index = 0;
  int attempt = 1;
  double ready_at = 0.0;  // monotonic seconds; backoff gate
};

struct Slot {
  util::Subprocess proc;
  FrameReader reader;
  bool live = false;
  bool poisoned = false;  // corrupt stream; kill pending
  bool has_inflight = false;
  std::size_t inflight_index = 0;
  int inflight_attempt = 0;
  double inflight_start = 0.0;
  bool alerted = false;    // watchdog alert raised for this attempt
  bool term_sent = false;  // escalation state
  double term_at = 0.0;
  std::size_t spawns = 0;
  std::size_t shards_done = 0;
  std::size_t crashes = 0;
};

}  // namespace

std::string_view supervised_outcome_name(
    SupervisedShard::Outcome outcome) noexcept {
  switch (outcome) {
    case SupervisedShard::Outcome::kPending: return "pending";
    case SupervisedShard::Outcome::kDone: return "done";
    case SupervisedShard::Outcome::kError: return "error";
    case SupervisedShard::Outcome::kCrashed: return "crashed";
    case SupervisedShard::Outcome::kSkipped: return "skipped";
  }
  return "pending";
}

ShardSupervisor::ShardSupervisor(SupervisorOptions options,
                                 std::vector<std::string> names,
                                 ChildRun child_run)
    : options_(std::move(options)),
      names_(std::move(names)),
      child_run_(std::move(child_run)) {}

SupervisorResult ShardSupervisor::run(const std::vector<std::size_t>& indices,
                                      obs::StatusBoard* status,
                                      const obs::StatusOptions& status_opts,
                                      const TerminalHook& on_terminal) {
  SupervisorResult result;
  result.shards.resize(names_.size());
  if (indices.empty()) return result;
  for (std::size_t i : indices)
    if (i >= names_.size())
      throw std::invalid_argument("ShardSupervisor: shard index out of range");

  // A dead worker's command pipe must error the write, not kill us.
  struct sigaction ignore_pipe {};
  struct sigaction old_pipe {};
  ignore_pipe.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

  const auto crash_directive = parse_supervisor_crash();
  std::size_t terminal_count = 0;

  std::vector<Work> pending;
  pending.reserve(indices.size());
  for (std::size_t i : indices) pending.push_back({i, 1, 0.0});
  std::size_t remaining = indices.size();

  const std::size_t jobs = std::max<std::size_t>(1, options_.jobs);
  std::vector<Slot> slots(jobs);
  std::size_t spawn_failures = 0;  // consecutive; a stuck launcher aborts

  std::vector<double> completed_walls;
  const double interval_s =
      std::max(status_opts.interval_ms, 1.0) / 1000.0;
  double last_tick = 0.0;

  const auto median_wall = [&]() -> double {
    if (completed_walls.empty()) return 0.0;
    std::vector<double> walls = completed_walls;
    const std::size_t mid = walls.size() / 2;
    std::nth_element(walls.begin(), walls.begin() + mid, walls.end());
    return walls[mid];
  };

  const auto backoff_s = [&](int attempt) {
    double ms = options_.backoff_initial_ms;
    for (int i = 1; i < attempt; ++i) ms *= 2.0;
    return std::min(ms, options_.backoff_max_ms) / 1000.0;
  };

  const auto status_outcome = [&](SupervisedShard::Outcome oc) {
    if (oc == SupervisedShard::Outcome::kDone)
      return obs::StatusBoard::Outcome::kDone;
    if (oc == SupervisedShard::Outcome::kError && !options_.graceful)
      return obs::StatusBoard::Outcome::kFailed;
    return obs::StatusBoard::Outcome::kQuarantined;
  };

  const auto finish_shard = [&](std::size_t index,
                                SupervisedShard::Outcome oc, int attempts,
                                std::string payload_or_error) {
    auto& shard = result.shards[index];
    shard.outcome = oc;
    shard.attempts = attempts;
    if (oc == SupervisedShard::Outcome::kDone)
      shard.payload = std::move(payload_or_error);
    else
      shard.error = std::move(payload_or_error);
    --remaining;
    if (status != nullptr) status->shard_finished(index, status_outcome(oc));
    if (on_terminal) on_terminal(index, shard);
    ++terminal_count;
    if (crash_directive && terminal_count >= crash_directive->after)
      execute_supervisor_crash(*crash_directive);
  };

  const auto attempt_failed = [&](std::size_t index, int attempt,
                                  bool is_crash, std::string why) {
    if (attempt <= options_.max_shard_retries) {
      pending.push_back({index, attempt + 1, mono_s() + backoff_s(attempt)});
      if (status != nullptr) status->shard_attempt_failed(index);
      return;
    }
    finish_shard(index,
                 is_crash ? SupervisedShard::Outcome::kCrashed
                          : SupervisedShard::Outcome::kError,
                 attempt, std::move(why));
  };

  const auto spawn_into = [&](Slot& slot) -> bool {
    try {
      if (!options_.worker_argv.empty()) {
        slot.proc = util::Subprocess::spawn(options_.worker_argv);
      } else {
        const ChildRun& fn = child_run_;
        slot.proc = util::Subprocess::fork_child([&fn](int rfd, int wfd) {
          return shard_worker_loop(rfd, wfd, fn);
        });
      }
    } catch (...) {
      ++spawn_failures;
      return false;
    }
    slot.reader = FrameReader{};
    slot.live = true;
    slot.poisoned = false;
    slot.has_inflight = false;
    slot.alerted = false;
    slot.term_sent = false;
    ++slot.spawns;
    ++result.spawns;
    return true;
  };

  // Decodes whatever frames the slot's buffered bytes hold. A corrupt
  // stream or a frame for the wrong shard poisons the worker: its framing
  // can no longer be trusted, so it is killed and the in-flight shard is
  // charged a crashed attempt (on reap).
  const auto process_frames = [&](Slot& slot) {
    if (slot.poisoned) return;
    ShardFrame frame;
    for (;;) {
      const auto r = slot.reader.next(&frame);
      if (r == FrameReader::Result::kNeedMore) return;
      if (r == FrameReader::Result::kCorrupt ||
          !slot.has_inflight ||
          frame.index != slot.inflight_index) {
        slot.poisoned = true;
        slot.proc.signal(SIGKILL);
        return;
      }
      slot.has_inflight = false;
      slot.term_sent = false;
      const double wall = mono_s() - slot.inflight_start;
      if (frame.status == ShardFrameStatus::kOk) {
        completed_walls.push_back(wall);
        ++slot.shards_done;
        finish_shard(frame.index, SupervisedShard::Outcome::kDone,
                     static_cast<int>(frame.attempt), std::move(frame.payload));
      } else {
        attempt_failed(frame.index, static_cast<int>(frame.attempt), false,
                       std::move(frame.payload));
      }
    }
  };

  const auto drain = [&](Slot& slot) {
    std::string bytes;
    const bool open = util::read_available(slot.proc.stdout_fd(), &bytes);
    if (!bytes.empty()) {
      slot.reader.feed(bytes);
      process_frames(slot);
    }
    return open;
  };

  // Reaps a dead worker: drain the pipe to EOF (frames written before
  // death are still valid results), then charge any unanswered in-flight
  // shard as a crashed attempt.
  const auto reap = [&](Slot& slot) {
    for (int spins = 0; spins < 4096; ++spins) {
      std::string bytes;
      const bool open = util::read_available(slot.proc.stdout_fd(), &bytes);
      if (!bytes.empty()) {
        slot.reader.feed(bytes);
        process_frames(slot);
      }
      if (!open) break;
      if (bytes.empty()) break;  // EAGAIN with a dead writer: all drained
    }
    const util::ExitStatus st = *slot.proc.status();
    if (slot.has_inflight) {
      ++slot.crashes;
      ++result.crashes;
      std::string why = "worker " + st.describe();
      if (slot.reader.has_partial()) why += ", torn result frame discarded";
      if (slot.poisoned) why = "worker result stream corrupted (" + why + ")";
      slot.has_inflight = false;
      attempt_failed(slot.inflight_index, slot.inflight_attempt, true,
                     std::move(why));
    } else if (st.exited && st.code == 127) {
      // execvp failed inside the child — count toward the launcher guard.
      ++spawn_failures;
    }
    slot.live = false;
    slot.proc = util::Subprocess{};
  };

  // Picks the ready work item with the earliest (ready_at, index).
  const auto take_ready = [&](double now) -> std::optional<Work> {
    std::size_t best = pending.size();
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].ready_at > now) continue;
      if (best == pending.size() ||
          pending[i].ready_at < pending[best].ready_at ||
          (pending[i].ready_at == pending[best].ready_at &&
           pending[i].index < pending[best].index))
        best = i;
    }
    if (best == pending.size()) return std::nullopt;
    const Work w = pending[best];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best));
    return w;
  };

  const auto dispatch = [&](Slot& slot, int slot_id, const Work& work) {
    const std::string cmd = encode_run_command(
        static_cast<std::uint32_t>(work.index),
        static_cast<std::uint32_t>(work.attempt));
    if (!util::write_all(slot.proc.stdin_fd(), cmd)) {
      // The worker is dying; the command never arrived. Requeue without
      // charging an attempt — the reap path owns the death accounting.
      pending.push_back(work);
      return;
    }
    slot.has_inflight = true;
    slot.inflight_index = work.index;
    slot.inflight_attempt = work.attempt;
    slot.inflight_start = mono_s();
    slot.alerted = false;
    slot.term_sent = false;
    if (status != nullptr)
      status->shard_started(work.index, slot_id);
  };

  const auto escalate = [&](Slot& slot, double now) {
    if (!slot.term_sent) {
      slot.proc.signal(SIGTERM);
      slot.term_sent = true;
      slot.term_at = now;
      ++result.kills;
    } else if (now - slot.term_at >= options_.term_grace_s) {
      slot.proc.signal(SIGKILL);
    }
  };

  const auto snapshot_processes = [&]() {
    std::vector<obs::ProcessStatus> procs;
    procs.reserve(slots.size());
    for (std::size_t s = 0; s < slots.size(); ++s) {
      const Slot& slot = slots[s];
      obs::ProcessStatus p;
      p.slot = static_cast<int>(s);
      p.pid = slot.live ? static_cast<long>(slot.proc.pid()) : -1;
      p.alive = slot.live;
      p.spawns = slot.spawns;
      p.shards_done = slot.shards_done;
      p.crashes = slot.crashes;
      if (slot.has_inflight) p.shard = names_[slot.inflight_index];
      procs.push_back(std::move(p));
    }
    return procs;
  };

  const auto status_tick = [&](bool force) {
    if (status == nullptr) return;
    const double now = mono_s();
    if (!force && now - last_tick < interval_s) return;
    last_tick = now;
    status->set_processes(snapshot_processes());
    if (!status_opts.file.empty())
      obs::write_file_atomic(status_opts.file,
                             obs::render_status_json(status->snapshot()));
  };

  bool interrupted = false;
  while (remaining > 0) {
    if (options_.interrupt != nullptr && *options_.interrupt != 0) {
      interrupted = true;
      break;
    }
    double now = mono_s();

    // 1. Reap the dead.
    for (auto& slot : slots)
      if (slot.live && slot.proc.poll().has_value()) reap(slot);

    // 2. Launcher health: if workers repeatedly fail to even start, the
    // remaining shards can never run — surface that as crashed shards
    // instead of spinning forever.
    if (spawn_failures >= 5) {
      while (!pending.empty()) {
        const Work w = pending.back();
        pending.pop_back();
        finish_shard(w.index, SupervisedShard::Outcome::kCrashed, w.attempt,
                     "worker process failed to start");
      }
      // In-flight shards (if any workers are alive) still finish below.
      if (remaining == 0) break;
    }

    // 3. Spawn + dispatch.
    for (std::size_t s = 0; s < slots.size(); ++s) {
      auto& slot = slots[s];
      if (!slot.live && spawn_failures < 5) {
        // Only stand a process up when runnable work exists for it.
        bool runnable = false;
        for (const auto& w : pending)
          if (w.ready_at <= now) runnable = true;
        if (runnable) {
          if (!spawn_into(slot)) continue;
        }
      }
      if (slot.live && !slot.poisoned && !slot.has_inflight) {
        if (auto work = take_ready(now)) dispatch(slot, static_cast<int>(s), *work);
      }
    }

    // 4. Hang escalation: hard timeout, then the median-multiple watchdog
    // (alert first, TERM on the next pass, KILL after the grace).
    now = mono_s();
    const double med = median_wall();
    for (std::size_t s = 0; s < slots.size(); ++s) {
      auto& slot = slots[s];
      if (!slot.live || !slot.has_inflight) continue;
      const double elapsed = now - slot.inflight_start;
      if (options_.shard_timeout_s > 0.0 &&
          elapsed > options_.shard_timeout_s) {
        if (!slot.term_sent) ++result.timeouts;
        escalate(slot, now);
        continue;
      }
      if (options_.watchdog_multiple > 0.0 && med > 0.0 &&
          completed_walls.size() >= options_.watchdog_min_completed &&
          elapsed > options_.watchdog_multiple * med) {
        if (!slot.alerted) {
          slot.alerted = true;
          obs::WatchdogAlert alert;
          alert.shard = names_[slot.inflight_index];
          alert.worker = static_cast<int>(s);
          alert.elapsed_s = elapsed;
          alert.median_s = med;
          result.alerts.push_back(alert);
          if (status != nullptr) status->add_alert(alert);
        } else {
          escalate(slot, now);
        }
      }
    }

    status_tick(false);

    // 5. Sleep on the worker pipes (50ms cap keeps escalation ticking).
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> fd_slots;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].live) continue;
      fds.push_back({slots[s].proc.stdout_fd(), POLLIN, 0});
      fd_slots.push_back(s);
    }
    if (fds.empty()) {
      ::usleep(2000);
      continue;
    }
    const int rc = ::poll(fds.data(), fds.size(), 50);
    if (rc > 0) {
      for (std::size_t f = 0; f < fds.size(); ++f)
        if ((fds[f].revents & (POLLIN | POLLHUP)) != 0)
          (void)drain(slots[fd_slots[f]]);
    }
  }

  // Shutdown: on interrupt TERM→grace→KILL; otherwise close the command
  // pipes and let workers exit 0 on EOF (killing them would race their
  // final clean exit and show up as noise in the process telemetry).
  if (interrupted) {
    result.interrupted = true;
    for (auto& slot : slots)
      if (slot.live) slot.proc.signal(SIGTERM);
  } else {
    for (auto& slot : slots)
      if (slot.live) slot.proc.close_stdin();
  }
  const double deadline = mono_s() + std::max(options_.term_grace_s, 0.1);
  for (;;) {
    bool any_live = false;
    for (auto& slot : slots) {
      if (!slot.live) continue;
      if (slot.proc.poll().has_value()) {
        slot.live = false;
        slot.proc = util::Subprocess{};
      } else {
        any_live = true;
      }
    }
    if (!any_live || mono_s() >= deadline) break;
    ::usleep(5000);
  }
  for (auto& slot : slots) {
    if (slot.live) {
      slot.proc.kill_now();
      slot.live = false;
      slot.proc = util::Subprocess{};
    }
  }

  if (interrupted) {
    for (std::size_t i : indices) {
      auto& shard = result.shards[i];
      if (shard.outcome == SupervisedShard::Outcome::kPending) {
        shard.outcome = SupervisedShard::Outcome::kSkipped;
        shard.error = "interrupted";
      }
    }
  }

  result.processes = snapshot_processes();
  status_tick(true);
  ::sigaction(SIGPIPE, &old_pipe, nullptr);
  return result;
}

}  // namespace vpna::core

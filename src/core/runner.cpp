#include "core/runner.h"

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/strings.h"
#include "vpn/client.h"

namespace vpna::core {

bool ProviderReport::any_dns_leak() const {
  for (const auto& vp : vantage_points)
    if (vp.dns_leak.leaked()) return true;
  return false;
}

bool ProviderReport::any_ipv6_leak() const {
  for (const auto& vp : vantage_points)
    if (vp.ipv6_leak.leaked()) return true;
  return false;
}

bool ProviderReport::any_tunnel_failure_leak() const {
  for (const auto& vp : vantage_points)
    if (vp.tunnel_failure.leaked()) return true;
  return false;
}

bool ProviderReport::any_proxy_detected() const {
  for (const auto& vp : vantage_points)
    if (vp.proxy.proxy_detected) return true;
  return false;
}

bool ProviderReport::any_dom_modification() const {
  for (const auto& vp : vantage_points)
    if (!vp.dom_collection.modified_doms().empty()) return true;
  return false;
}

TestRunner::TestRunner(ecosystem::Testbed& testbed, RunnerOptions options)
    : testbed_(testbed), options_(options) {}

void TestRunner::collect_ground_truth() {
  obs::Span span("runner.ground_truth", "core");
  truth_ = core::collect_ground_truth(*testbed_.world, *testbed_.client);
}

namespace {

MetadataSnapshot collect_metadata(const netsim::Host& host) {
  MetadataSnapshot meta;
  meta.routing_table = host.routes().dump();
  for (const auto& server : host.dns_servers())
    meta.dns_resolvers.push_back(server.str());
  for (const auto& iface : host.interfaces()) {
    std::string desc = iface.name;
    if (iface.addr4) desc += " inet " + iface.addr4->str();
    if (iface.addr6) desc += " inet6 " + iface.addr6->str();
    if (!iface.up) desc += " (down)";
    meta.interfaces.push_back(std::move(desc));
  }
  return meta;
}

}  // namespace

VantagePointReport TestRunner::run_vantage_point(
    const vpn::DeployedProvider& provider,
    const vpn::DeployedVantagePoint& vp, std::uint32_t session) {
  obs::Span vp_span("runner.vantage_point", "core");
  if (vp_span) {
    vp_span.arg("provider", provider.spec.name);
    vp_span.arg("vantage", vp.spec.id);
  }
  // Runs `fn` under a sim-time span named after the test, plus a wall-clock
  // profiler phase (inert unless --profile enabled it).
  const auto timed = [](std::string_view name, auto&& fn) {
    obs::ProfileScope profile(name);
    obs::Span span(name, "test");
    return fn();
  };

  VantagePointReport report;
  report.provider = provider.spec.name;
  report.vantage_id = vp.spec.id;
  report.advertised_country = vp.spec.advertised_country;
  report.advertised_city = vp.spec.advertised_city;
  report.egress_addr = vp.addr;

  auto& world = *testbed_.world;
  auto& client = *testbed_.client;

  // Fresh VM state between vantage points: the capture is cleared and any
  // residue from the previous run was removed at disconnect.
  client.capture().clear();

  // Fault attribution baseline: injected-fault count before this vantage
  // point ran, so a degradation record can report the delta.
  const auto faults_now = [] {
    const auto* m = obs::meter();
    return m != nullptr ? m->counter_prefix_sum("faults.") : std::uint64_t{0};
  };
  const std::uint64_t faults_before = faults_now();

  vpn::VpnClient vpn_client(world.network(), client, provider.spec, session);
  // Flaky endpoints (§5.2) get retried before being written off.
  const int attempts = std::max(1, options_.connect_attempts);
  vpn::ConnectResult connect;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    connect = vpn_client.connect(vp.addr);
    if (connect.connected) break;
  }
  report.connected = connect.connected;
  obs::count("runner.vantage_points");
  if (!connect.connected) {
    obs::count("runner.connect_failures");
    // Under a fault profile an exhausted connect is graceful degradation:
    // keep the structured outcome in the payload. Off-profile failures
    // (FlakyService et al.) report exactly as before — no degradation
    // record, so kOff artifacts stay byte-identical.
    if (options_.fault_profile != faults::FaultProfile::kOff) {
      report.degradation.degraded = true;
      report.degradation.stage = "connect";
      report.degradation.error = connect.error;
      report.degradation.attempts = attempts;
      report.degradation.faults_seen = faults_now() - faults_before;
      obs::count("runner.degraded_vantage_points");
    }
    if (vp_span) vp_span.arg("connected", "false");
    return report;
  }

  report.metadata = collect_metadata(client);

  // Interception & manipulation suites.
  report.dns_manipulation = timed("test.dns_manipulation", [&] {
    return run_dns_manipulation_test(world, client);
  });
  if (options_.run_web_suites) {
    report.dom_collection = timed("test.dom_collection", [&] {
      return run_dom_collection_test(world, client, truth_);
    });
    report.tls =
        timed("test.tls", [&] { return run_tls_test(world, client, truth_); });
  }
  report.proxy = timed("test.proxy_detection", [&] {
    return run_proxy_detection_test(world, client);
  });

  // Infrastructure suites.
  report.recursive_origin = timed("test.recursive_origin", [&] {
    return run_recursive_dns_origin_test(
        world, client,
        util::format("t%u-%s-%s", session, provider.spec.name.c_str(),
                     vp.spec.id.c_str()));
  });
  report.pings =
      timed("test.pings", [&] { return run_ping_probe_test(world, client); });
  report.geo_api =
      timed("test.geo_api", [&] { return run_geo_api_test(world, client); });

  // Leakage suites. DNS/IPv6 leak tests only apply to first-party clients
  // (manual OpenVPN configurations require hand-set DNS/IPv6 state, §6.5).
  if (provider.spec.has_custom_client || !options_.respect_client_model) {
    report.dns_leak =
        timed("test.dns_leak", [&] { return run_dns_leak_test(world, client); });
    report.ipv6_leak = timed("test.ipv6_leak",
                             [&] { return run_ipv6_leak_test(world, client); });
  }
  report.tunnel_failure = timed("test.tunnel_failure", [&] {
    return run_tunnel_failure_test(world, client, vpn_client,
                                   options_.tunnel_failure_window_s);
  });

  report.pcap = timed("test.pcap_scan", [&] { return run_pcap_scan(client); });

  // Performance suite: measured while the tunnel is still up, like the
  // paper's in-tunnel collection. No-op (ran=false) without capacities.
  if (options_.speed_test) {
    report.speed_test = timed("test.speed_test", [&] {
      return run_speed_test(world, client, vp.addr,
                            options_.speed_test_options);
    });
  }

  // Per-suite outcome counters: the campaign-level pass/fail surface.
  if (report.dns_manipulation.manipulation_detected())
    obs::count("test.dns_manipulation.detected");
  if (!report.dom_collection.modified_doms().empty())
    obs::count("test.dom_collection.modified");
  if (report.tls.interception_count() > 0) obs::count("test.tls.intercepted");
  if (report.proxy.proxy_detected) obs::count("test.proxy_detection.detected");
  if (report.dns_leak.leaked()) obs::count("test.dns_leak.leaked");
  if (report.ipv6_leak.leaked()) obs::count("test.ipv6_leak.leaked");
  if (report.tunnel_failure.leaked()) obs::count("test.tunnel_failure.leaked");

  vpn_client.disconnect();
  return report;
}

ProviderReport TestRunner::run_provider(const vpn::DeployedProvider& provider) {
  obs::Span span("runner.provider", "core");
  if (span) span.arg("provider", provider.spec.name);

  ProviderReport report;
  report.provider = provider.spec.name;
  report.subscription = provider.spec.subscription;
  report.has_custom_client = provider.spec.has_custom_client;

  // Vantage-point selection: maximize geographic (country) diversity, as
  // the paper's manual procedure did.
  std::vector<const vpn::DeployedVantagePoint*> selected;
  if (options_.vantage_points_per_provider == 0 ||
      provider.vantage_points.size() <= options_.vantage_points_per_provider) {
    for (const auto& vp : provider.vantage_points) selected.push_back(&vp);
  } else {
    std::set<std::string> countries;
    for (const auto& vp : provider.vantage_points) {
      if (selected.size() >= options_.vantage_points_per_provider) break;
      if (countries.insert(vp.spec.advertised_country).second)
        selected.push_back(&vp);
    }
    for (const auto& vp : provider.vantage_points) {
      if (selected.size() >= options_.vantage_points_per_provider) break;
      if (std::find(selected.begin(), selected.end(), &vp) == selected.end())
        selected.push_back(&vp);
    }
  }

  for (const auto* vp : selected)
    report.vantage_points.push_back(
        run_vantage_point(provider, *vp, next_session_++));
  return report;
}

std::vector<ProviderReport> TestRunner::run_all() {
  std::vector<ProviderReport> out;
  out.reserve(testbed_.providers.size());
  for (const auto& provider : testbed_.providers)
    out.push_back(run_provider(provider));
  return out;
}

}  // namespace vpna::core

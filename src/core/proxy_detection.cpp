#include "core/proxy_detection.h"

#include "http/client.h"
#include "http/message.h"

namespace vpna::core {

ProxyDetectionResult run_proxy_detection_test(inet::World& world,
                                              netsim::Host& client) {
  ProxyDetectionResult out;
  http::HttpClient c(world.network(), client);

  // Distinctive header set: unusual casing and spacing that a
  // parse-and-regenerate proxy cannot help but normalize.
  http::FetchOptions opts;
  opts.headers = {
      {"user-AGENT", "vpna-probe/1.0  (double  spaced)"},
      {"x-ODD-Casing-hEADER", "keep-Me-Exactly"},
      {"Accept", "text/html"},
  };
  const auto res =
      c.fetch("http://" + std::string(inet::header_echo_host()) + "/", opts);
  out.request_succeeded = res.ok();
  if (!res.ok() || res.exchanges.empty()) return out;

  out.sent = res.exchanges.front().request_serialized;
  out.received = res.body;
  out.proxy_detected = out.sent != out.received;
  if (out.proxy_detected) {
    const auto sent_req = http::HttpRequest::decode(out.sent);
    const auto seen_req = http::HttpRequest::decode(out.received);
    if (sent_req && seen_req) {
      out.headers_added = seen_req->headers.size() > sent_req->headers.size();
      out.headers_rewritten =
          seen_req->headers.size() == sent_req->headers.size();
    }
  }
  return out;
}

PcapScanResult run_pcap_scan(const netsim::Host& client) {
  PcapScanResult out;
  for (const auto& rec : client.capture().records()) {
    ++out.packets_scanned;
    if (rec.interface_name != "eth0") continue;
    const bool is_dns_query = rec.packet.proto == netsim::Proto::kUdp &&
                              rec.packet.dst_port == netsim::kPortDns &&
                              !rec.packet.payload.starts_with("TUN1|");
    if (!is_dns_query) continue;
    if (rec.direction == netsim::Direction::kIn) {
      // A DNS *query* arriving at us (destination port 53 inbound): someone
      // is resolving through our address.
      ++out.unexpected_inbound_dns;
    } else {
      ++out.unattributed_outbound_dns;
    }
  }
  return out;
}

}  // namespace vpna::core

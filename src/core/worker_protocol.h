// IPC protocol between the campaign supervisor and its shard worker
// processes.
//
// Command channel (supervisor → worker, the worker's fd 0): one text line
// per task, "R <shard-index> <attempt>\n". EOF means "no more work, exit
// 0". Text because it is trivially debuggable (`echo "R 3 1" | worker`).
//
// Result channel (worker → supervisor, the worker's fd 1): one binary
// frame per finished shard:
//
//   magic   u32  'VPNW' (little-endian 0x574e5056)
//   index   u32  shard index echoed from the command
//   attempt u32  attempt echoed from the command
//   status  u8   0 = ok (payload = canonical report bytes)
//                1 = error (payload = human-readable reason; the shard
//                    threw inside the worker — contained, worker lives on)
//   length  u64  payload byte count
//   payload      `length` bytes
//   check   u64  FNV-1a over the payload bytes
//
// The frame is the crash-containment boundary: a worker that dies mid-
// write leaves a prefix of a frame behind, which the supervisor's
// FrameReader reports as incomplete at EOF — the in-flight shard is
// retried on a fresh process and the torn bytes are discarded, never
// decoded. A corrupted stream (bad magic or checksum — e.g. stray stdout
// from shard code in an exec-mode worker) is sticky-poisoned: the
// supervisor kills that worker and re-runs its in-flight shard.
//
// Deterministic crash injection (tests, CI lanes): the worker loop honours
//   VPNA_CRASH_SHARD=<index>[:segv|exit|hang][:always]
// self-destructing right before running shard <index>. Default mode is
// segv; `segv` additionally writes a torn frame prefix first so the
// supervisor's partial-frame path is exercised, `exit` _exits 41, `hang`
// blocks forever (the watchdog/timeout escalation reaps it). Without
// `:always` the crash fires only on attempt 1, so a retried shard
// succeeds — the containment path is testable without flaky timing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace vpna::core {

inline constexpr std::uint32_t kWorkerFrameMagic = 0x574e5056;  // "VPNW"

enum class ShardFrameStatus : std::uint8_t { kOk = 0, kError = 1 };

struct ShardFrame {
  std::uint32_t index = 0;
  std::uint32_t attempt = 0;
  ShardFrameStatus status = ShardFrameStatus::kOk;
  std::string payload;
};

[[nodiscard]] std::string encode_shard_frame(const ShardFrame& frame);

// Incremental frame parser fed from the supervisor's non-blocking pipe
// reads. Corruption (bad magic, checksum mismatch, bad status byte) is
// sticky: once poisoned, next() returns kCorrupt forever — the stream
// framing is lost and the only safe recovery is killing the worker.
class FrameReader {
 public:
  enum class Result : std::uint8_t {
    kFrame,     // *out filled with one complete frame
    kNeedMore,  // buffer holds no complete frame yet
    kCorrupt,   // stream poisoned (sticky)
  };

  void feed(std::string_view bytes);
  Result next(ShardFrame* out);

  // True when undecoded bytes are buffered — at worker EOF this means a
  // torn frame (the worker died mid-write).
  [[nodiscard]] bool has_partial() const noexcept {
    return !corrupt_ && !buffer_.empty();
  }
  [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }

 private:
  std::string buffer_;
  bool corrupt_ = false;
};

// Command-line helpers ("R <index> <attempt>\n").
[[nodiscard]] std::string encode_run_command(std::uint32_t index,
                                             std::uint32_t attempt);
[[nodiscard]] bool parse_run_command(std::string_view line,
                                     std::uint32_t* index,
                                     std::uint32_t* attempt);

// Parsed VPNA_CRASH_SHARD directive (exposed for tests).
struct CrashDirective {
  std::uint32_t index = 0;
  enum class Mode : std::uint8_t { kSegv, kExit, kHang } mode = Mode::kSegv;
  bool always = false;  // fire on every attempt, not just the first
};

[[nodiscard]] std::optional<CrashDirective> parse_crash_directive(
    std::string_view spec);

// The worker process body: blocks reading commands from `in_fd`, invokes
// `run(index, attempt)` for each, writes one frame per command to
// `out_fd`, and returns 0 on clean EOF. Exceptions from `run` become
// kError frames (the worker survives); a broken result pipe returns 3.
// Honours VPNA_CRASH_SHARD (see above) before invoking `run`.
int shard_worker_loop(
    int in_fd, int out_fd,
    const std::function<std::string(std::uint32_t index, std::uint32_t attempt)>&
        run);

}  // namespace vpna::core

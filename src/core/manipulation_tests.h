// Traffic interception & manipulation tests (paper §5.3.1):
//
//  - DNS manipulation: resolve popular names via the tunnel's default
//    resolver and cross-check against Google Public DNS; classify
//    mismatches via WHOIS ownership.
//  - DOM & request collection: load the 55-site list plus honeysites
//    through the tunnel and diff DOMs/request logs against ground truth;
//    classify HTTP redirects using the public-suffix relatedness rule.
//  - TLS interception & downgrade: handshake directly with each host,
//    validate and fingerprint-compare the chain; then load each site over
//    HTTP and record whether upgrades get stripped or responses blocked.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/groundtruth.h"
#include "inet/world.h"

namespace vpna::core {

// ---------- DNS manipulation --------------------------------------------------

struct DnsMismatch {
  std::string hostname;
  std::string via_default;        // answer from the tunnel resolver
  std::string via_google;         // answer from Google Public DNS
  std::string default_owner;      // WHOIS org of the suspicious answer
  std::string google_owner;
  bool suspicious = false;        // owners differ (human follow-up needed)
};

struct DnsManipulationResult {
  int names_tested = 0;
  std::vector<DnsMismatch> mismatches;
  [[nodiscard]] bool manipulation_detected() const {
    for (const auto& m : mismatches)
      if (m.suspicious) return true;
    return false;
  }
};

[[nodiscard]] DnsManipulationResult run_dns_manipulation_test(
    inet::World& world, netsim::Host& client);

// ---------- DOM & request collection -----------------------------------------

enum class RedirectClass : std::uint8_t {
  kNone,          // no redirect
  kRelated,       // redirect within related domains (benign)
  kUnrelated,     // redirect to an unrelated domain (block page / hijack)
};

struct PageObservation {
  std::string hostname;
  bool load_ok = false;
  RedirectClass redirect = RedirectClass::kNone;
  std::string final_host;          // where the chain ended
  bool dom_matches_groundtruth = true;
  std::vector<std::string> unexpected_request_urls;  // not in the whitelist
};

struct DomCollectionResult {
  std::vector<PageObservation> pages;
  [[nodiscard]] std::vector<const PageObservation*> unrelated_redirects() const;
  [[nodiscard]] std::vector<const PageObservation*> modified_doms() const;
};

[[nodiscard]] DomCollectionResult run_dom_collection_test(
    inet::World& world, netsim::Host& client, const GroundTruth& truth);

// ---------- TLS interception & downgrade -------------------------------------

struct TlsObservation {
  std::string hostname;
  bool handshake_ok = false;
  bool chain_valid = false;
  bool fingerprint_matches = true;  // vs ground truth
  std::string presented_issuer;
  // The HTTP-side walk:
  int http_status = 0;              // final status of the plain-HTTP load
  bool upgraded_to_https = false;   // redirect chain reached https
  bool upgrade_stripped = false;    // GT upgraded but this load did not
  bool blocked_403 = false;         // VPN-range discrimination
  bool empty_200 = false;           // blocked with an empty body
};

struct TlsTestResult {
  std::vector<TlsObservation> hosts;
  [[nodiscard]] int interception_count() const;
  [[nodiscard]] int stripped_count() const;
  [[nodiscard]] int blocked_count() const;
};

[[nodiscard]] TlsTestResult run_tls_test(inet::World& world,
                                         netsim::Host& client,
                                         const GroundTruth& truth);

}  // namespace vpna::core

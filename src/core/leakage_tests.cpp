#include "core/leakage_tests.h"

#include "dns/client.h"
#include "transport/flow.h"

namespace vpna::core {

namespace {

// Counts un-encapsulated packets matching `pred` captured outbound on the
// physical interface since `since_index`.
template <typename Pred>
int count_clear_on_eth0(const netsim::Host& client, std::size_t since_index,
                        Pred pred) {
  int n = 0;
  const auto& records = client.capture().records();
  for (std::size_t i = since_index; i < records.size(); ++i) {
    const auto& rec = records[i];
    if (rec.interface_name != "eth0") continue;
    if (rec.direction != netsim::Direction::kOut) continue;
    if (rec.packet.payload.starts_with("TUN1|")) continue;  // encapsulated
    if (pred(rec.packet)) ++n;
  }
  return n;
}

}  // namespace

DnsLeakResult run_dns_leak_test(inet::World& world, netsim::Host& client) {
  DnsLeakResult out;
  const std::size_t mark = client.capture().records().size();

  const std::vector<std::string> names = {
      "daily-courier-news.com", "wikipedia.org", "chatter-square.com",
      "kernel-patch-news.net", "stock-ticker-watch.com"};
  // System resolver path plus explicit public resolvers. Failed lookups are
  // tallied (not swallowed): the capture scan below still decides "leaked",
  // but a dead resolver no longer masquerades as a clean result.
  const auto tally = [&out](const dns::LookupResult& res) {
    ++out.queries_issued;
    if (!res.ok()) {
      ++out.queries_failed;
      out.last_error = res.error;
    }
  };
  for (const auto& name : names)
    tally(dns::resolve_system(world.network(), client, name, dns::RrType::kA));
  for (const auto& name : names) {
    tally(dns::query(world.network(), client, world.google_dns(), name,
                     dns::RrType::kA));
    tally(dns::query(world.network(), client, world.quad9_dns(), name,
                     dns::RrType::kA));
  }

  out.plaintext_dns_on_physical_interface =
      count_clear_on_eth0(client, mark, [](const netsim::Packet& p) {
        return p.proto == netsim::Proto::kUdp &&
               p.dst_port == netsim::kPortDns;
      });
  return out;
}

Ipv6LeakResult run_ipv6_leak_test(inet::World& world, netsim::Host& client) {
  Ipv6LeakResult out;
  const std::size_t mark = client.capture().records().size();

  // Resolve AAAA records for dual-stack sites, then attempt direct v6
  // connections to them.
  const std::vector<std::string> names = {
      "daily-courier-news.com", "metro-herald.net", "worldwire-report.com",
      "capital-dispatch.org", "policy-tribune.net"};
  for (const auto& name : names) {
    const auto aaaa =
        dns::resolve_system(world.network(), client, name, dns::RrType::kAaaa);
    if (!aaaa.ok() || aaaa.addresses.empty()) {
      if (!aaaa.ok()) {
        ++out.lookup_failures;
        out.last_error = aaaa.error;
      }
      continue;
    }
    ++out.attempts;
    transport::Flow conn(world.network(), client, netsim::Proto::kTcp,
                         aaaa.addresses.front(), netsim::kPortHttp);
    const auto res = conn.exchange("GET / HTTP/1.1\nHost: " + name + "\n\n");
    if (res.ok() && !res.via_tunnel) ++out.v6_connections_succeeded_outside_tunnel;
    if (!res.error.ok()) {
      ++out.connect_failures;
      out.last_error = res.error;
    }
  }

  out.v6_packets_on_physical_interface = count_clear_on_eth0(
      client, mark, [](const netsim::Packet& p) { return p.dst.is_v6(); });
  return out;
}

TunnelFailureResult run_tunnel_failure_test(inet::World& world,
                                            netsim::Host& client,
                                            vpn::VpnClient& vpn_client,
                                            double window_seconds) {
  TunnelFailureResult out;
  out.window_seconds = window_seconds;
  if (vpn_client.state() != vpn::ClientState::kConnected) return out;

  // Block all outbound traffic to the VPN server on the hardware path.
  netsim::FwRule deny;
  deny.action = netsim::FwAction::kDeny;
  deny.direction = netsim::Direction::kOut;
  deny.remote_addr = vpn_client.server_addr();
  deny.label = "induced-failure";
  client.firewall().add_rule(deny);
  out.failure_induced = true;

  // Fixed probe set: the first three anchors.
  std::vector<netsim::IpAddr> probes;
  for (std::size_t i = 0; i < 3 && i < world.anchors().size(); ++i)
    probes.push_back(world.anchors()[i].addr);

  const auto t_end = world.clock().now() +
                     util::SimTime::from_seconds(window_seconds);
  while (world.clock().now() < t_end) {
    vpn_client.tick();
    for (const auto& dst : probes) {
      transport::FlowOptions fopts;
      fopts.timeout_ms = 500.0;
      transport::Flow probe(world.network(), client, netsim::Proto::kIcmpEcho,
                            dst, 0, fopts);
      const auto res = probe.exchange({});
      ++out.probes_sent;
      if (res.ok() && !res.via_tunnel) ++out.probes_escaped_clear;
      if (!res.error.ok()) {
        ++out.probes_failed;
        out.last_probe_error = res.error;
      }
    }
    world.clock().advance_seconds(10);
  }

  client.firewall().remove_label("induced-failure");
  out.final_state = vpn_client.state();
  return out;
}

WebRtcLeakResult run_webrtc_leak_test(inet::World& world,
                                      netsim::Host& client) {
  WebRtcLeakResult out;
  out.connected_via_vpn = client.has_tunnel_hook();

  // Host candidates: every global address on an up interface, exactly what
  // 2018-era browsers handed to any page through RTCPeerConnection.
  for (const auto& iface : client.interfaces()) {
    if (iface.name == "lo" || !iface.up) continue;
    if (iface.addr4) out.host_candidates.push_back(*iface.addr4);
    if (iface.addr6) out.host_candidates.push_back(*iface.addr6);
  }

  // Server-reflexive candidate: a STUN binding request through whatever
  // route the system gives it (the tunnel, when one is up).
  const auto lookup = dns::resolve_system(world.network(), client,
                                          inet::stun_host(), dns::RrType::kA);
  if (lookup.ok() && !lookup.addresses.empty()) {
    transport::Flow stun(world.network(), client, netsim::Proto::kUdp,
                         lookup.addresses.front(), inet::kPortStun);
    const auto res = stun.exchange("STUN-BINDING");
    if (res.ok() && res.reply.starts_with("MAPPED|"))
      out.reflexive_candidate = netsim::IpAddr::parse(res.reply.substr(7));
  }

  // The leak: a site scripting ICE gathering learns the physical
  // interface's address even though every packet rides the tunnel.
  if (out.connected_via_vpn) {
    const auto* eth0 = client.find_interface("eth0");
    if (eth0 != nullptr && eth0->addr4) {
      for (const auto& candidate : out.host_candidates)
        if (candidate == *eth0->addr4) out.reveals_true_address = true;
    }
  }
  return out;
}

}  // namespace vpna::core

#include "core/parallel_campaign.h"

#include <chrono>
#include <future>
#include <optional>
#include <stdexcept>

#include "ecosystem/evaluated.h"
#include "ecosystem/testbed.h"
#include "faults/profile.h"
#include "obs/trace.h"
#include "transport/policy.h"

namespace vpna::core {

namespace {

// The shard body shared by the plain and traced entry points; assumes any
// desired obs binding is already installed on the calling thread.
ProviderReport run_shard_body(const std::string& name,
                              std::uint64_t campaign_seed,
                              const RunnerOptions& options,
                              ecosystem::Testbed& shard) {
  // Fault profiles arm transport-level resilience for the whole shard:
  // every flow that didn't pick its own retry/fallback settings adopts the
  // profile's. kOff installs nothing (session_policy_for returns nullptr).
  transport::ScopedSessionPolicy session_policy(
      faults::session_policy_for(options.fault_profile));
  // Degradation records attribute give-ups to injected faults via the
  // faults.* counters, which only exist while a registry is bound. Traced
  // campaigns already bind one per shard; for untraced fault-profile runs,
  // bind a throwaway metrics-only registry here. Never engaged under kOff,
  // so off-profile shards observe exactly what they did before.
  obs::MetricsRegistry attribution;
  std::optional<obs::ScopedObservation> attribution_scope;
  if (options.fault_profile != faults::FaultProfile::kOff &&
      obs::meter() == nullptr)
    attribution_scope.emplace(nullptr, &attribution);

  obs::Span root("shard.run", "campaign");
  if (root) {
    root.arg("provider", name);
    root.arg("seed", static_cast<std::int64_t>(campaign_seed));
  }
  TestRunner runner(shard, options);
  runner.collect_ground_truth();
  const auto* deployed = shard.provider(name);
  if (deployed == nullptr)
    throw std::runtime_error("run_provider_shard: shard missing " + name);
  return runner.run_provider(*deployed);
}

}  // namespace

ProviderReport run_provider_shard(
    const std::string& name, std::uint64_t campaign_seed,
    const RunnerOptions& options,
    std::shared_ptr<const netsim::RoutingPlane> plane) {
  auto shard = ecosystem::build_provider_shard(
      name, campaign_seed, std::move(plane), options.fault_profile,
      options.speed_test);
  if (!shard.world)
    throw std::invalid_argument("run_provider_shard: unknown provider " + name);
  return run_shard_body(name, campaign_seed, options, shard);
}

ProviderReport run_provider_shard(
    const std::string& name, std::uint64_t campaign_seed,
    const RunnerOptions& options, const obs::TraceConfig& trace,
    obs::ShardTrace* out, std::shared_ptr<const netsim::RoutingPlane> plane) {
  if (!trace.enabled || out == nullptr)
    return run_provider_shard(name, campaign_seed, options, std::move(plane));

  auto shard = ecosystem::build_provider_shard(
      name, campaign_seed, std::move(plane), options.fault_profile,
      options.speed_test);
  if (!shard.world)
    throw std::invalid_argument("run_provider_shard: unknown provider " + name);

  obs::TraceRecorder recorder(trace);
  recorder.bind_clock(&shard.world->network().clock());
  obs::MetricsRegistry metrics;
  ProviderReport report;
  {
    obs::ScopedObservation scope(&recorder, &metrics);
    report = run_shard_body(name, campaign_seed, options, shard);
  }
  out->shard = name;
  out->events = recorder.take_events();
  out->metrics = std::move(metrics);
  return report;
}

namespace {

// Canonicalize to catalog order, dropping unknown names and duplicates.
std::vector<std::string> canonical_selection(
    const std::vector<std::string>& names) {
  std::vector<std::string> out;
  for (const auto& ep : ecosystem::evaluated_providers()) {
    if (names.empty()) {
      out.push_back(ep.spec.name);
      continue;
    }
    for (const auto& name : names) {
      if (name == ep.spec.name) {
        out.push_back(ep.spec.name);
        break;
      }
    }
  }
  return out;
}

// Placeholder for a shard that failed every attempt: keeps the provider's
// slot (and catalog order) in the report without fabricating measurements.
ProviderReport failed_shard_report(const std::string& name) {
  ProviderReport report;
  report.provider = name;
  const auto* ep = ecosystem::evaluated_provider(name);
  if (ep != nullptr) {
    report.subscription = ep->spec.subscription;
    report.has_custom_client = ep->spec.has_custom_client;
  }
  return report;
}

// Keeps a failed shard's slot in the traces vector: the shard name with no
// events and (at most) a failure counter, so trace alignment with
// `providers` survives shard failures.
obs::ShardTrace failed_shard_trace(const std::string& name) {
  obs::ShardTrace trace;
  trace.shard = name;
  trace.metrics.add("shard.failed");
  return trace;
}

// Quarantine variants: under an active fault profile an exhausted shard is
// a structured degraded outcome (the campaign still succeeds), not a hard
// failure — the placeholder carries the quarantined flag instead of the
// provider landing in failed_providers.
ProviderReport quarantined_shard_report(const std::string& name) {
  ProviderReport report = failed_shard_report(name);
  report.quarantined = true;
  return report;
}

obs::ShardTrace quarantined_shard_trace(const std::string& name) {
  obs::ShardTrace trace;
  trace.shard = name;
  trace.metrics.add("shard.quarantined");
  return trace;
}

}  // namespace

ParallelCampaign::ParallelCampaign(CampaignOptions options)
    : options_(std::move(options)) {}

CampaignReport ParallelCampaign::run(const std::vector<std::string>& names,
                                     std::uint64_t seed) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto selection = canonical_selection(names);

  CampaignReport report;
  report.seed = seed;
  report.providers.resize(selection.size());
  const bool traced = options_.trace.enabled;
  if (traced) report.traces.resize(selection.size());

  const int attempts = options_.shard_attempts < 1 ? 1 : options_.shard_attempts;
  // Under a fault profile, shards that exhaust every attempt degrade
  // gracefully into quarantine instead of failing the campaign.
  const bool graceful =
      options_.runner.fault_profile != faults::FaultProfile::kOff;

  // One all-pairs plane serves every shard (their core topologies are
  // identical); computed up front so no shard pays the Dijkstra sweep.
  const std::shared_ptr<const netsim::RoutingPlane> plane =
      options_.share_routing_plane ? ecosystem::shared_backbone_plane()
                                   : nullptr;

  if (options_.jobs == 1) {
    // Serial path: the identical shard tasks, run in-caller in catalog
    // order. No pool, no threads — the determinism baseline.
    report.jobs = 1;
    util::WorkerCounters serial;
    for (std::size_t i = 0; i < selection.size(); ++i) {
      bool done = false;
      for (int attempt = 1; attempt <= attempts && !done; ++attempt) {
        ++serial.tasks_run;
        const auto shard_t0 = std::chrono::steady_clock::now();
        try {
          // Fresh trace per attempt, so a retried shard's trace contains
          // only the successful run — identical to the first-try trace.
          obs::ShardTrace trace;
          report.providers[i] = run_provider_shard(
              selection[i], seed, options_.runner, options_.trace,
              traced ? &trace : nullptr, plane);
          if (traced) report.traces[i] = std::move(trace);
          done = true;
        } catch (...) {
          if (attempt < attempts) {
            ++serial.retries;
          } else if (graceful) {
            report.providers[i] = quarantined_shard_report(selection[i]);
            if (traced) report.traces[i] = quarantined_shard_trace(selection[i]);
          } else {
            report.providers[i] = failed_shard_report(selection[i]);
            if (traced) report.traces[i] = failed_shard_trace(selection[i]);
            report.failed_providers.push_back(selection[i]);
          }
        }
        serial.busy_wall_s += std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - shard_t0)
                                  .count();
      }
    }
    report.workers.push_back(serial);
  } else {
    util::TaskPool pool(options_.jobs);
    report.jobs = pool.worker_count();
    util::TaskOptions task_opts;
    task_opts.max_attempts = attempts;
    task_opts.timeout_s = options_.shard_timeout_s;

    // A shard's report and its trace travel together through the future so
    // a retry can never pair one attempt's report with another's trace.
    struct ShardOutcome {
      ProviderReport report;
      obs::ShardTrace trace;
    };

    std::vector<std::future<ShardOutcome>> futures;
    futures.reserve(selection.size());
    const RunnerOptions runner_opts = options_.runner;
    const obs::TraceConfig trace_cfg = options_.trace;
    for (const auto& name : selection) {
      futures.push_back(pool.submit(
          [name, seed, runner_opts, trace_cfg, traced, plane] {
            ShardOutcome out;
            out.report = run_provider_shard(name, seed, runner_opts, trace_cfg,
                                            traced ? &out.trace : nullptr,
                                            plane);
            return out;
          },
          task_opts));
    }
    // Merge in canonical catalog order — the futures vector is already in
    // that order, regardless of which worker ran which shard when.
    for (std::size_t i = 0; i < futures.size(); ++i) {
      try {
        auto outcome = futures[i].get();
        report.providers[i] = std::move(outcome.report);
        if (traced) report.traces[i] = std::move(outcome.trace);
      } catch (...) {
        if (graceful) {
          report.providers[i] = quarantined_shard_report(selection[i]);
          if (traced) report.traces[i] = quarantined_shard_trace(selection[i]);
        } else {
          report.providers[i] = failed_shard_report(selection[i]);
          if (traced) report.traces[i] = failed_shard_trace(selection[i]);
          report.failed_providers.push_back(selection[i]);
        }
      }
    }
    // The last shard's promise resolves before its worker finishes its
    // counter bookkeeping; drain the pool so the snapshot is complete.
    pool.wait_idle();
    report.workers = pool.counters();
  }

  // One canonical-order pass over the merged providers: worker count and
  // scheduling never influence this list, so it is part of the
  // deterministic payload.
  for (const auto& p : report.providers)
    if (p.degraded()) report.degraded_providers.push_back(p.provider);

  report.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace vpna::core

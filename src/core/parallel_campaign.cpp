#include "core/parallel_campaign.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/report_codec.h"
#include "core/shard_supervisor.h"
#include "ecosystem/evaluated.h"
#include "ecosystem/testbed.h"
#include "faults/profile.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "store/code_epoch.h"
#include "store/journal.h"
#include "transport/policy.h"
#include "util/mem.h"
#include "util/rng.h"
#include "util/strings.h"

namespace vpna::core {

namespace {

// The shard body shared by the plain and traced entry points; assumes any
// desired obs binding is already installed on the calling thread.
ProviderReport run_shard_body(const std::string& name,
                              std::uint64_t campaign_seed,
                              const RunnerOptions& options,
                              ecosystem::Testbed& shard) {
  // Fault profiles arm transport-level resilience for the whole shard:
  // every flow that didn't pick its own retry/fallback settings adopts the
  // profile's. kOff installs nothing (session_policy_for returns nullptr).
  transport::ScopedSessionPolicy session_policy(
      faults::session_policy_for(options.fault_profile));
  // Degradation records attribute give-ups to injected faults via the
  // faults.* counters, which only exist while a registry is bound. Traced
  // campaigns already bind one per shard; for untraced fault-profile runs,
  // bind a throwaway metrics-only registry here. Never engaged under kOff,
  // so off-profile shards observe exactly what they did before.
  obs::MetricsRegistry attribution;
  std::optional<obs::ScopedObservation> attribution_scope;
  if (options.fault_profile != faults::FaultProfile::kOff &&
      obs::meter() == nullptr)
    attribution_scope.emplace(nullptr, &attribution);

  obs::ProfileScope profile("shard.run");
  obs::Span root("shard.run", "campaign");
  if (root) {
    root.arg("provider", name);
    root.arg("seed", static_cast<std::int64_t>(campaign_seed));
  }
  TestRunner runner(shard, options);
  runner.collect_ground_truth();
  const auto* deployed = shard.provider(name);
  if (deployed == nullptr)
    throw std::runtime_error("run_provider_shard: shard missing " + name);
  return runner.run_provider(*deployed);
}

}  // namespace

ProviderReport run_provider_shard(
    const std::string& name, std::uint64_t campaign_seed,
    const RunnerOptions& options,
    std::shared_ptr<const netsim::RoutingPlane> plane) {
  auto shard = ecosystem::build_provider_shard(
      name, campaign_seed, std::move(plane), options.fault_profile,
      options.speed_test);
  if (!shard.world)
    throw std::invalid_argument("run_provider_shard: unknown provider " + name);
  return run_shard_body(name, campaign_seed, options, shard);
}

ProviderReport run_provider_shard(
    const std::string& name, std::uint64_t campaign_seed,
    const RunnerOptions& options, const obs::TraceConfig& trace,
    obs::ShardTrace* out, std::shared_ptr<const netsim::RoutingPlane> plane) {
  if (!trace.enabled || out == nullptr)
    return run_provider_shard(name, campaign_seed, options, std::move(plane));

  auto shard = ecosystem::build_provider_shard(
      name, campaign_seed, std::move(plane), options.fault_profile,
      options.speed_test);
  if (!shard.world)
    throw std::invalid_argument("run_provider_shard: unknown provider " + name);

  obs::TraceRecorder recorder(trace);
  recorder.bind_clock(&shard.world->network().clock());
  obs::MetricsRegistry metrics;
  ProviderReport report;
  {
    obs::ScopedObservation scope(&recorder, &metrics);
    report = run_shard_body(name, campaign_seed, options, shard);
  }
  out->shard = name;
  out->events = recorder.take_events();
  out->metrics = std::move(metrics);
  return report;
}

std::string_view cache_outcome_name(ShardCacheRecord::Outcome outcome) noexcept {
  switch (outcome) {
    case ShardCacheRecord::Outcome::kBypass:
      return "bypass";
    case ShardCacheRecord::Outcome::kHit:
      return "hit";
    case ShardCacheRecord::Outcome::kMiss:
      return "miss";
    case ShardCacheRecord::Outcome::kCorrupt:
      return "corrupt";
  }
  return "bypass";
}

CacheSummary summarize_cache(
    const std::vector<ShardCacheRecord>& records) noexcept {
  CacheSummary s;
  s.shards = records.size();
  for (const auto& r : records) {
    switch (r.outcome) {
      case ShardCacheRecord::Outcome::kBypass: ++s.bypassed; break;
      case ShardCacheRecord::Outcome::kHit:
        ++s.hits;
        s.bytes_read += r.bytes;
        break;
      case ShardCacheRecord::Outcome::kMiss: ++s.misses; break;
      case ShardCacheRecord::Outcome::kCorrupt: ++s.corrupt; break;
    }
    if (r.stored) {
      ++s.stored;
      s.bytes_written += r.bytes;
    }
  }
  return s;
}

store::ShardKey campaign_shard_key(const std::string& name, std::uint64_t seed,
                                   const RunnerOptions& options) {
  store::ShardKey key;
  key.code_epoch = store::kCodeEpoch;
  key.payload_format = kShardReportFormatVersion;
  key.catalog_fingerprint = ecosystem::provider_catalog_fingerprint(name);
  key.shard_seed = ecosystem::shard_seed(seed, name);
  key.fault_profile = std::string(faults::profile_name(options.fault_profile));
  key.link_capacities = options.speed_test;
  key.runner_options_fingerprint = runner_options_fingerprint(options);
  return key;
}

namespace {

// Cache plumbing shared by the serial and pooled paths: keys derived up
// front (cheap, pure), the store consulted inside each shard task so a hit
// skips world construction on whichever path runs.
struct ShardCacheContext {
  std::optional<store::ArtifactStore> store;
  std::vector<store::ShardKey> keys;  // aligned with the selection
  // Traced runs bypass: a ShardTrace is not part of the cached artifact,
  // so a hit could not reproduce one.
  bool bypass = false;

  [[nodiscard]] bool enabled() const { return store.has_value(); }
};

// Consults the store for shard `i`; on a decodable hit fills *report and
// returns true. Otherwise records the probe outcome (bypass/miss/corrupt)
// and returns false — the caller recomputes and calls store_shard().
bool fetch_shard(const ShardCacheContext& ctx, std::size_t i,
                 const std::string& name, ProviderReport* report,
                 ShardCacheRecord* record, obs::StatusBoard* status) {
  record->provider = name;
  if (!ctx.enabled()) return false;
  record->key_id = ctx.keys[i].id();
  if (ctx.bypass) return false;  // outcome stays kBypass
  obs::ProfileScope profile("campaign.cache");
  store::FetchResult fetched = ctx.store->fetch(ctx.keys[i]);
  if (fetched.status == store::FetchStatus::kHit) {
    ProviderReport decoded;
    if (decode_provider_report(fetched.payload, &decoded) &&
        decoded.provider == name) {
      record->outcome = ShardCacheRecord::Outcome::kHit;
      record->bytes = fetched.payload.size();
      if (status != nullptr)
        status->cache_event(obs::StatusBoard::CacheEvent::kHit);
      *report = std::move(decoded);
      return true;
    }
    // Integrity-valid but undecodable (foreign writer, or a codec change
    // that forgot its version bump): corruption from the campaign's point
    // of view. Evict (rw only) so the rewrite below lands clean.
    ctx.store->discard(ctx.keys[i]);
    fetched.status = store::FetchStatus::kCorrupt;
  }
  const bool corrupt = fetched.status == store::FetchStatus::kCorrupt;
  record->outcome = corrupt ? ShardCacheRecord::Outcome::kCorrupt
                            : ShardCacheRecord::Outcome::kMiss;
  if (status != nullptr)
    status->cache_event(corrupt ? obs::StatusBoard::CacheEvent::kCorrupt
                                : obs::StatusBoard::CacheEvent::kMiss);
  return false;
}

// Files a recomputed shard report (rw stores, non-bypassed shards only —
// and never for failed/quarantined placeholders; callers skip those).
void store_shard(const ShardCacheContext& ctx, std::size_t i,
                 const ProviderReport& report, ShardCacheRecord* record) {
  if (!ctx.enabled() || ctx.bypass || !ctx.store->config().writable()) return;
  obs::ProfileScope profile("campaign.cache");
  const std::string bytes = encode_provider_report(report);
  if (ctx.store->put(ctx.keys[i], bytes)) {
    record->stored = true;
    record->bytes = bytes.size();
  }
}

// Canonicalize to catalog order, dropping unknown names and duplicates.
std::vector<std::string> canonical_selection(
    const std::vector<std::string>& names) {
  std::vector<std::string> out;
  for (const auto& ep : ecosystem::evaluated_providers()) {
    if (names.empty()) {
      out.push_back(ep.spec.name);
      continue;
    }
    for (const auto& name : names) {
      if (name == ep.spec.name) {
        out.push_back(ep.spec.name);
        break;
      }
    }
  }
  return out;
}

// Placeholder for a shard that failed every attempt: keeps the provider's
// slot (and catalog order) in the report without fabricating measurements.
ProviderReport failed_shard_report(const std::string& name) {
  ProviderReport report;
  report.provider = name;
  const auto* ep = ecosystem::evaluated_provider(name);
  if (ep != nullptr) {
    report.subscription = ep->spec.subscription;
    report.has_custom_client = ep->spec.has_custom_client;
  }
  return report;
}

// Keeps a failed shard's slot in the traces vector: the shard name with no
// events and (at most) a failure counter, so trace alignment with
// `providers` survives shard failures.
obs::ShardTrace failed_shard_trace(const std::string& name) {
  obs::ShardTrace trace;
  trace.shard = name;
  trace.metrics.add("shard.failed");
  return trace;
}

// Quarantine variants: under an active fault profile an exhausted shard is
// a structured degraded outcome (the campaign still succeeds), not a hard
// failure — the placeholder carries the quarantined flag instead of the
// provider landing in failed_providers.
ProviderReport quarantined_shard_report(const std::string& name) {
  ProviderReport report = failed_shard_report(name);
  report.quarantined = true;
  return report;
}

obs::ShardTrace quarantined_shard_trace(const std::string& name) {
  obs::ShardTrace trace;
  trace.shard = name;
  trace.metrics.add("shard.quarantined");
  return trace;
}

// Background health monitor: on every tick it runs the watchdog scan,
// refreshes the per-worker counter snapshot on the board, and atomically
// rewrites the status file. RAII — destruction stops the thread and runs
// one final tick so the file ends at 100% with the complete alert list.
// Purely observational: it reads pool counters and board state, so it can
// never perturb shard results.
class StatusMonitor {
 public:
  StatusMonitor(obs::StatusBoard& board, const obs::StatusOptions& opts,
                const util::TaskPool* pool)
      : board_(board), opts_(opts), pool_(pool) {
    thread_ = std::thread([this] { loop(); });
  }

  ~StatusMonitor() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    tick();
  }

  StatusMonitor(const StatusMonitor&) = delete;
  StatusMonitor& operator=(const StatusMonitor&) = delete;

 private:
  void loop() {
    const auto interval = std::chrono::duration<double, std::milli>(
        opts_.interval_ms < 1.0 ? 1.0 : opts_.interval_ms);
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, interval, [this] { return stop_; })) return;
      lock.unlock();
      tick();
      lock.lock();
    }
  }

  void tick() {
    if (opts_.watchdog_multiple > 0.0)
      board_.watchdog_scan(opts_.watchdog_multiple,
                           opts_.watchdog_min_completed);
    if (pool_ != nullptr) {
      std::vector<obs::WorkerStatus> workers;
      for (const auto& c : pool_->counters()) {
        obs::WorkerStatus w;
        w.tasks_run = c.tasks_run;
        w.steals = c.steals;
        w.retries = c.retries;
        w.timeouts = c.timeouts;
        w.busy_wall_s = c.busy_wall_s;
        workers.push_back(w);
      }
      board_.set_workers(std::move(workers));
    }
    if (!opts_.file.empty())
      obs::write_file_atomic(opts_.file,
                             obs::render_status_json(board_.snapshot()));
  }

  obs::StatusBoard& board_;
  obs::StatusOptions opts_;
  const util::TaskPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

// Binds a journal to one campaign configuration: the journaled outcomes
// describe a computation of exactly (seed, code epoch, runner options,
// canonical selection) — resume against anything else is refused.
std::uint64_t campaign_execution_fingerprint(
    const std::vector<std::string>& selection, std::uint64_t seed,
    const RunnerOptions& options) {
  std::string canon = util::format(
      "vpna-campaign-exec-v1\x1f%llu\x1f%u\x1f%llu\x1f",
      static_cast<unsigned long long>(seed), store::kCodeEpoch,
      static_cast<unsigned long long>(runner_options_fingerprint(options)));
  for (const auto& name : selection) {
    canon += name;
    canon.push_back('\x1f');
  }
  return util::fnv1a(canon);
}

}  // namespace

ParallelCampaign::ParallelCampaign(CampaignOptions options)
    : options_(std::move(options)) {}

CampaignReport ParallelCampaign::run(const std::vector<std::string>& names,
                                     std::uint64_t seed) {
  if (options_.isolate && options_.trace.enabled)
    throw std::invalid_argument(
        "ParallelCampaign: --isolate cannot trace shards (a ShardTrace does "
        "not stream over the worker frame protocol)");
  const auto t0 = std::chrono::steady_clock::now();
  const auto selection = canonical_selection(names);

  CampaignReport report;
  report.seed = seed;
  report.providers.resize(selection.size());
  const bool traced = options_.trace.enabled;
  if (traced) report.traces.resize(selection.size());

  const int attempts = options_.shard_attempts < 1 ? 1 : options_.shard_attempts;
  // Under a fault profile, shards that exhaust every attempt degrade
  // gracefully into quarantine instead of failing the campaign.
  const bool graceful =
      options_.runner.fault_profile != faults::FaultProfile::kOff;

  // One all-pairs plane serves every shard (their core topologies are
  // identical); computed up front so no shard pays the Dijkstra sweep.
  const std::shared_ptr<const netsim::RoutingPlane> plane =
      options_.share_routing_plane ? ecosystem::shared_backbone_plane()
                                   : nullptr;

  // Health plane: a StatusBoard receives shard heartbeats from whichever
  // path runs below; the monitor thread (scoped per path, so it never
  // outlives the pool it snapshots) does the periodic file rewrite and
  // watchdog scan. Telemetry only — shard results cannot observe it.
  std::optional<obs::StatusBoard> board;
  if (options_.status.engaged()) board.emplace();
  obs::StatusBoard* status = board ? &*board : nullptr;

  // Content-addressed cache: one key per shard, derived up front.
  ShardCacheContext cache_ctx;
  if (options_.cache.enabled()) {
    cache_ctx.store.emplace(options_.cache);
    cache_ctx.bypass = traced;
    cache_ctx.keys.reserve(selection.size());
    for (const auto& name : selection)
      cache_ctx.keys.push_back(campaign_shard_key(name, seed, options_.runner));
    report.cache_records.resize(selection.size());
  }

  if (options_.isolate) {
    // Isolated path: shards run in supervised worker processes; the
    // supervisor is single-threaded (fork safety), so status ticks happen
    // inline instead of via a StatusMonitor thread. Cache consults and
    // journal appends stay in this process — workers only compute.
    const std::size_t jobs = options_.jobs == 0
                                 ? std::max(1u, std::thread::hardware_concurrency())
                                 : options_.jobs;
    report.jobs = jobs;
    report.execution_isolated = true;
    if (status != nullptr) status->begin(selection, jobs);

    const std::uint64_t exec_fp =
        campaign_execution_fingerprint(selection, seed, options_.runner);
    store::JournalHeader header;
    header.campaign_fingerprint = exec_fp;
    header.seed = seed;
    header.shards = selection.size();
    header.cache_dir = options_.cache.dir;

    // Shards settled before the supervisor runs: journal replays first,
    // then plain warm-cache hits. Both go through fetch_shard, so a
    // replayed report is exactly the bytes a recompute would produce.
    std::vector<char> settled(selection.size(), 0);
    ShardCacheRecord scratch_record;
    const auto record_for = [&](std::size_t i) {
      return cache_ctx.enabled() ? &report.cache_records[i] : &scratch_record;
    };

    bool fresh_journal = true;
    if (options_.resume && !options_.journal_path.empty()) {
      store::JournalHeader old_header;
      std::vector<store::JournalEntry> entries;
      if (store::CampaignJournal::load(options_.journal_path, &old_header,
                                       &entries)) {
        if (old_header.campaign_fingerprint != exec_fp)
          throw std::runtime_error(
              "ParallelCampaign: --resume refused — the journal describes a "
              "different campaign configuration (seed, code epoch, options, "
              "or provider selection changed)");
        fresh_journal = false;
        for (const auto& e : entries) {
          if (e.outcome != "done" || e.index >= selection.size()) continue;
          if (e.provider != selection[e.index] || settled[e.index] != 0)
            continue;
          if (!cache_ctx.enabled() || cache_ctx.bypass) continue;
          if (!e.key_id.empty() && e.key_id != cache_ctx.keys[e.index].id())
            continue;  // journaled under a different key: recompute
          if (status != nullptr) status->shard_started(e.index, -1);
          if (fetch_shard(cache_ctx, e.index, selection[e.index],
                          &report.providers[e.index], record_for(e.index),
                          status)) {
            settled[e.index] = 1;
            ++report.resumed_shards;
            if (status != nullptr)
              status->shard_finished(e.index, obs::StatusBoard::Outcome::kDone);
          }
        }
      }
      // No loadable journal: a fresh run that happens to carry --resume.
    }

    std::optional<store::CampaignJournal> journal;
    if (!options_.journal_path.empty())
      journal = store::CampaignJournal::open(options_.journal_path, header,
                                             fresh_journal);
    const auto journal_record = [&](std::size_t i, std::string_view outcome,
                                    int attempts, std::string_view detail) {
      if (!journal || !journal->valid()) return;
      store::JournalEntry e;
      e.index = i;
      e.provider = selection[i];
      e.outcome = std::string(outcome);
      if (cache_ctx.enabled()) e.key_id = cache_ctx.keys[i].id();
      e.attempts = attempts;
      e.detail = std::string(detail);
      journal->record(e);
    };

    // Warm-cache pass for everything the journal didn't settle.
    for (std::size_t i = 0; i < selection.size(); ++i) {
      if (settled[i] != 0) continue;
      if (!cache_ctx.enabled() || cache_ctx.bypass) break;
      if (status != nullptr) status->shard_started(i, -1);
      if (fetch_shard(cache_ctx, i, selection[i], &report.providers[i],
                      record_for(i), status)) {
        settled[i] = 1;
        if (status != nullptr)
          status->shard_finished(i, obs::StatusBoard::Outcome::kDone);
        journal_record(i, "done", 0, "cache-hit");
      }
    }

    std::vector<std::size_t> todo;
    for (std::size_t i = 0; i < selection.size(); ++i)
      if (settled[i] == 0) todo.push_back(i);

    SupervisorOptions sup;
    sup.jobs = jobs;
    sup.max_shard_retries = options_.max_shard_retries;
    sup.shard_timeout_s = options_.shard_timeout_s;
    sup.term_grace_s = options_.term_grace_s;
    sup.watchdog_multiple = options_.status.watchdog_multiple;
    sup.watchdog_min_completed = options_.status.watchdog_min_completed;
    sup.worker_argv = options_.worker_argv;
    sup.graceful = graceful;
    sup.interrupt = options_.interrupt;

    const RunnerOptions runner_opts = options_.runner;
    const std::vector<std::string> shard_names = selection;
    ShardSupervisor supervisor(
        sup, selection,
        [shard_names, seed, runner_opts, plane](std::uint32_t index,
                                                std::uint32_t) {
          // Runs in the worker (fork mode). The frame payload is the
          // canonical report encoding — the same bytes a cache artifact
          // holds, so every consumer downstream decodes one format.
          return encode_provider_report(run_provider_shard(
              shard_names.at(index), seed, runner_opts, plane));
        });

    const auto on_terminal = [&](std::size_t i, const SupervisedShard& s) {
      // Journal + artifact filing happen here, the moment the outcome is
      // terminal: a supervisor killed right after this leaves a durable
      // record of exactly the shards whose results survive.
      switch (s.outcome) {
        case SupervisedShard::Outcome::kDone: {
          auto* record = record_for(i);
          if (cache_ctx.enabled() && !cache_ctx.bypass &&
              cache_ctx.store->config().writable() &&
              cache_ctx.store->put(cache_ctx.keys[i], s.payload)) {
            record->stored = true;
            record->bytes = s.payload.size();
          }
          journal_record(i, "done", s.attempts, "");
          break;
        }
        case SupervisedShard::Outcome::kCrashed:
          journal_record(i, "quarantined", s.attempts, s.error);
          break;
        case SupervisedShard::Outcome::kError:
          journal_record(i, graceful ? "quarantined" : "failed", s.attempts,
                         s.error);
          break;
        default:
          break;
      }
    };

    SupervisorResult sres =
        supervisor.run(todo, status, options_.status, on_terminal);

    for (std::size_t i : todo) {
      const SupervisedShard& s = sres.shards[i];
      switch (s.outcome) {
        case SupervisedShard::Outcome::kDone: {
          ProviderReport decoded;
          if (decode_provider_report(s.payload, &decoded) &&
              decoded.provider == selection[i]) {
            report.providers[i] = std::move(decoded);
          } else {
            // A checksummed frame that doesn't decode means codec skew,
            // not line noise — quarantine rather than trust it.
            report.providers[i] = quarantined_shard_report(selection[i]);
            report.crash_quarantined_providers.push_back(selection[i]);
          }
          break;
        }
        case SupervisedShard::Outcome::kCrashed:
          report.providers[i] = quarantined_shard_report(selection[i]);
          report.crash_quarantined_providers.push_back(selection[i]);
          break;
        case SupervisedShard::Outcome::kError:
          if (graceful) {
            report.providers[i] = quarantined_shard_report(selection[i]);
          } else {
            report.providers[i] = failed_shard_report(selection[i]);
            report.failed_providers.push_back(selection[i]);
          }
          break;
        case SupervisedShard::Outcome::kSkipped:
        case SupervisedShard::Outcome::kPending:
          // Interrupted before completion: placeholder only. The run is
          // reported interrupted, so nothing downstream trusts the payload.
          report.providers[i] = failed_shard_report(selection[i]);
          break;
      }
    }

    report.interrupted = sres.interrupted;
    report.process_spawns = sres.spawns;
    report.process_crashes = sres.crashes;
    report.process_kills = sres.kills;
    report.process_timeouts = sres.timeouts;
    report.processes = std::move(sres.processes);
    if (!board) report.watchdog_alerts = sres.alerts;
  } else if (options_.jobs == 1) {
    // Serial path: the identical shard tasks, run in-caller in catalog
    // order. No pool, no threads — the determinism baseline.
    report.jobs = 1;
    if (status != nullptr) status->begin(selection, 1);
    std::optional<StatusMonitor> monitor;
    if (status != nullptr) monitor.emplace(*status, options_.status, nullptr);
    util::WorkerCounters serial;
    ShardCacheRecord scratch_record;
    for (std::size_t i = 0; i < selection.size(); ++i) {
      ShardCacheRecord* record = cache_ctx.enabled()
                                     ? &report.cache_records[i]
                                     : &scratch_record;
      if (status != nullptr) status->shard_started(i, -1);
      if (fetch_shard(cache_ctx, i, selection[i], &report.providers[i], record,
                      status)) {
        // Replayed from the store — no world built, no attempts spent. The
        // merged report is byte-identical to a recompute by the purity of
        // shards, so nothing downstream can tell.
        if (status != nullptr)
          status->shard_finished(i, obs::StatusBoard::Outcome::kDone);
        continue;
      }
      bool done = false;
      for (int attempt = 1; attempt <= attempts && !done; ++attempt) {
        ++serial.tasks_run;
        const auto shard_t0 = std::chrono::steady_clock::now();
        if (status != nullptr) status->shard_started(i, -1);
        try {
          // Fresh trace per attempt, so a retried shard's trace contains
          // only the successful run — identical to the first-try trace.
          obs::ShardTrace trace;
          report.providers[i] = run_provider_shard(
              selection[i], seed, options_.runner, options_.trace,
              traced ? &trace : nullptr, plane);
          if (traced) report.traces[i] = std::move(trace);
          store_shard(cache_ctx, i, report.providers[i], record);
          done = true;
          if (status != nullptr)
            status->shard_finished(i, obs::StatusBoard::Outcome::kDone);
        } catch (...) {
          if (attempt < attempts) {
            ++serial.retries;
            if (status != nullptr) status->shard_attempt_failed(i);
          } else if (graceful) {
            report.providers[i] = quarantined_shard_report(selection[i]);
            if (traced) report.traces[i] = quarantined_shard_trace(selection[i]);
            if (status != nullptr)
              status->shard_finished(i, obs::StatusBoard::Outcome::kQuarantined);
          } else {
            report.providers[i] = failed_shard_report(selection[i]);
            if (traced) report.traces[i] = failed_shard_trace(selection[i]);
            report.failed_providers.push_back(selection[i]);
            if (status != nullptr)
              status->shard_finished(i, obs::StatusBoard::Outcome::kFailed);
          }
          if (!done && attempt == attempts) {
            // Exhausted shards leave a placeholder, never an artifact; the
            // provenance record says "bypass" — the cache played no part.
            record->outcome = ShardCacheRecord::Outcome::kBypass;
            record->bytes = 0;
          }
        }
        serial.busy_wall_s += std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - shard_t0)
                                  .count();
      }
    }
    report.workers.push_back(serial);
  } else {
    util::TaskPool pool(options_.jobs);
    report.jobs = pool.worker_count();
    if (status != nullptr) status->begin(selection, pool.worker_count());
    // Declared after the pool so it joins (and takes its final counter
    // snapshot) before the pool is torn down.
    std::optional<StatusMonitor> monitor;
    if (status != nullptr) monitor.emplace(*status, options_.status, &pool);
    util::TaskOptions task_opts;
    task_opts.max_attempts = attempts;
    task_opts.timeout_s = options_.shard_timeout_s;

    // A shard's report, its trace, and its cache provenance travel
    // together through the future so a retry can never pair one attempt's
    // report with another's trace (or cache record).
    struct ShardOutcome {
      ProviderReport report;
      obs::ShardTrace trace;
      ShardCacheRecord cache;
    };

    std::vector<std::future<ShardOutcome>> futures;
    futures.reserve(selection.size());
    const RunnerOptions runner_opts = options_.runner;
    const obs::TraceConfig trace_cfg = options_.trace;
    for (std::size_t i = 0; i < selection.size(); ++i) {
      const std::string name = selection[i];
      futures.push_back(pool.submit(
          [name, i, seed, runner_opts, trace_cfg, traced, plane, status,
           &cache_ctx] {
            // Heartbeats bracket every attempt (the pool re-invokes this
            // body on retry): started restarts the shard's watchdog clock,
            // a thrown attempt parks the slot back in pending so its wall
            // never reaches the ETA median.
            if (status != nullptr)
              status->shard_started(i, util::TaskPool::current_worker_index());
            ShardOutcome out;
            // Consulted per attempt — fetch is idempotent and cheap, and a
            // first-attempt failure never wrote anything back.
            if (fetch_shard(cache_ctx, i, name, &out.report, &out.cache,
                            status)) {
              if (status != nullptr)
                status->shard_finished(i, obs::StatusBoard::Outcome::kDone);
              return out;
            }
            try {
              out.report = run_provider_shard(name, seed, runner_opts,
                                              trace_cfg,
                                              traced ? &out.trace : nullptr,
                                              plane);
              store_shard(cache_ctx, i, out.report, &out.cache);
              if (status != nullptr)
                status->shard_finished(i, obs::StatusBoard::Outcome::kDone);
              return out;
            } catch (...) {
              if (status != nullptr) status->shard_attempt_failed(i);
              throw;
            }
          },
          task_opts));
    }
    // Merge in canonical catalog order — the futures vector is already in
    // that order, regardless of which worker ran which shard when. Cached
    // reports replay through this exact same path: by the time a future
    // resolves, hit and recompute are indistinguishable.
    obs::ProfileScope merge_profile("campaign.merge");
    for (std::size_t i = 0; i < futures.size(); ++i) {
      try {
        auto outcome = futures[i].get();
        report.providers[i] = std::move(outcome.report);
        if (traced) report.traces[i] = std::move(outcome.trace);
        if (cache_ctx.enabled())
          report.cache_records[i] = std::move(outcome.cache);
      } catch (...) {
        if (cache_ctx.enabled()) {
          // Exhausted shards leave a placeholder, never an artifact; the
          // provenance record says "bypass" — the cache played no part.
          report.cache_records[i].provider = selection[i];
          report.cache_records[i].key_id = cache_ctx.keys[i].id();
        }
        if (graceful) {
          report.providers[i] = quarantined_shard_report(selection[i]);
          if (traced) report.traces[i] = quarantined_shard_trace(selection[i]);
          if (status != nullptr)
            status->shard_finished(i, obs::StatusBoard::Outcome::kQuarantined);
        } else {
          report.providers[i] = failed_shard_report(selection[i]);
          if (traced) report.traces[i] = failed_shard_trace(selection[i]);
          report.failed_providers.push_back(selection[i]);
          if (status != nullptr)
            status->shard_finished(i, obs::StatusBoard::Outcome::kFailed);
        }
      }
    }
    // The last shard's promise resolves before its worker finishes its
    // counter bookkeeping; drain the pool so the snapshot is complete.
    pool.wait_idle();
    report.workers = pool.counters();
  }

  // One canonical-order pass over the merged providers: worker count and
  // scheduling never influence this list, so it is part of the
  // deterministic payload.
  for (const auto& p : report.providers)
    if (p.degraded()) report.degraded_providers.push_back(p.provider);

  if (board) report.watchdog_alerts = board->alerts();

  report.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

namespace {

// One shard's census: counts plus an FNV fingerprint over the target
// provider's vantage addresses in deployment order. Pure function of the
// materialized shard, so deferred and eager modes agree byte for byte.
ScaledShardCensus census_shard(const ecosystem::ScaledCatalog& catalog,
                               std::size_t index, ecosystem::Testbed& tb,
                               std::uint32_t max_clients) {
  const auto& name = catalog.providers[index].spec.name;
  ScaledShardCensus census;
  census.provider = name;
  census.modeled_subscribers = catalog.subscribers[index];
  census.clients = std::min(max_clients, catalog.subscribers[index]);
  if (!tb.world) return census;
  census.hosts = static_cast<std::uint32_t>(tb.world->host_count());
  const auto* deployed = tb.provider(name);
  if (deployed != nullptr) {
    census.vantage_points =
        static_cast<std::uint32_t>(deployed->vantage_points.size());
    std::string canon;
    for (const auto& vp : deployed->vantage_points) {
      canon += vp.addr.str();
      canon.push_back('\x1f');
    }
    census.address_fingerprint = util::fnv1a(canon);
  }
  return census;
}

}  // namespace

ScaledShardCensus run_scaled_census_shard(
    const ecosystem::ScaledCatalog& catalog, std::size_t index,
    const ScaledCampaignOptions& options,
    std::shared_ptr<const netsim::RoutingPlane> plane) {
  if (index >= catalog.providers.size())
    throw std::invalid_argument(
        "run_scaled_census_shard: shard index out of range");
  ecosystem::ScaledShardOptions shard_opts;
  shard_opts.max_clients = options.max_clients;
  auto shard = ecosystem::build_scaled_shard(
      catalog, catalog.providers[index].spec.name, options.seed,
      std::move(plane), shard_opts);
  return census_shard(catalog, index, shard, options.max_clients);
}

store::ShardKey scaled_shard_key(const ecosystem::ScaledCatalog& catalog,
                                 const std::string& name,
                                 const ScaledCampaignOptions& options) {
  store::ShardKey key;
  key.code_epoch = store::kCodeEpoch;
  key.payload_format = kShardCensusFormatVersion;
  key.catalog_fingerprint = catalog.provider_fingerprint(name);
  key.shard_seed = ecosystem::shard_seed(options.seed, name);
  // The census path runs no fault or capacity profile today; pinned so the
  // key shape stays identical to the base campaign's.
  key.fault_profile = std::string(faults::profile_name(faults::FaultProfile::kOff));
  key.link_capacities = false;
  key.runner_options_fingerprint = util::fnv1a(util::format(
      "vpna-scaled-options-v1\x1f%u\x1f", options.max_clients));
  return key;
}

ScaledCampaignReport run_scaled_campaign(
    const ecosystem::ScaledCatalog& catalog,
    const ScaledCampaignOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();

  ScaledCampaignReport report;
  report.seed = options.seed;
  report.eager = options.eager;
  report.catalog_fingerprint = catalog.fingerprint();
  const std::size_t n = catalog.providers.size();
  report.shards.resize(n);

  const std::shared_ptr<const netsim::RoutingPlane> plane =
      options.share_routing_plane ? ecosystem::shared_backbone_plane()
                                  : nullptr;
  ecosystem::ScaledShardOptions shard_opts;
  shard_opts.max_clients = options.max_clients;

  // Content-addressed census cache. Eager mode bypasses it: eager exists
  // as the RSS A/B baseline and must build every world regardless.
  std::optional<store::ArtifactStore> art;
  std::vector<store::ShardKey> keys;
  const bool cache_on = options.cache.enabled() && !options.eager;
  if (options.cache.enabled()) {
    report.cache_records.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      report.cache_records[i].provider = catalog.providers[i].spec.name;
  }
  if (cache_on) {
    art.emplace(options.cache);
    keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys.push_back(
          scaled_shard_key(catalog, catalog.providers[i].spec.name, options));
      report.cache_records[i].key_id = keys[i].id();
    }
  }

  // Arena accounting is deterministic (a pure function of each shard's
  // build sequence) but summed across threads, so gather atomically.
  // Cache hits skip the build, so warm runs contribute nothing here.
  std::atomic<std::uint64_t> arena_reserved{0};
  std::atomic<std::uint64_t> arena_used{0};

  // Cache consult; on a decodable hit fills *out and returns true.
  const auto fetch_one = [&](std::size_t i, ScaledShardCensus* out) -> bool {
    if (!cache_on) return false;
    const auto& name = catalog.providers[i].spec.name;
    ShardCacheRecord* record = &report.cache_records[i];
    obs::ProfileScope cache_profile("campaign.cache");
    store::FetchResult fetched = art->fetch(keys[i]);
    if (fetched.status == store::FetchStatus::kHit) {
      ScaledShardCensus census;
      if (decode_shard_census(fetched.payload, &census) &&
          census.provider == name) {
        record->outcome = ShardCacheRecord::Outcome::kHit;
        record->bytes = fetched.payload.size();
        *out = std::move(census);
        return true;
      }
      art->discard(keys[i]);
      fetched.status = store::FetchStatus::kCorrupt;
    }
    record->outcome = fetched.status == store::FetchStatus::kCorrupt
                          ? ShardCacheRecord::Outcome::kCorrupt
                          : ShardCacheRecord::Outcome::kMiss;
    return false;
  };

  // Deferred mode: the world exists only between here and the end of
  // this call — peak RSS is bounded by live workers, not shard count.
  const auto compute_one = [&](std::size_t i) {
    const auto& name = catalog.providers[i].spec.name;
    auto shard = ecosystem::build_scaled_shard(catalog, name, options.seed,
                                               plane, shard_opts);
    if (shard.world) {
      arena_reserved.fetch_add(shard.world->host_arena_reserved_bytes(),
                               std::memory_order_relaxed);
      arena_used.fetch_add(shard.world->host_arena_used_bytes(),
                           std::memory_order_relaxed);
    }
    return census_shard(catalog, i, shard, options.max_clients);
  };

  const auto store_one = [&](std::size_t i, const std::string& bytes) {
    if (!cache_on || !art->config().writable()) return;
    obs::ProfileScope cache_profile("campaign.cache");
    if (art->put(keys[i], bytes)) {
      report.cache_records[i].stored = true;
      report.cache_records[i].bytes = bytes.size();
    }
  };

  const auto run_one = [&](std::size_t i) {
    ScaledShardCensus census;
    if (fetch_one(i, &census)) return census;
    census = compute_one(i);
    store_one(i, encode_shard_census(census));
    return census;
  };

  if (options.eager) {
    // Eager baseline: every shard world materialized before any census —
    // the storage pattern deferred mode exists to avoid. Serial by design;
    // the point is RSS, not throughput.
    report.jobs = 1;
    std::vector<ecosystem::Testbed> worlds;
    worlds.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      worlds.push_back(ecosystem::build_scaled_shard(
          catalog, catalog.providers[i].spec.name, options.seed, plane,
          shard_opts));
    for (std::size_t i = 0; i < n; ++i) {
      if (worlds[i].world) {
        arena_reserved.fetch_add(worlds[i].world->host_arena_reserved_bytes(),
                                 std::memory_order_relaxed);
        arena_used.fetch_add(worlds[i].world->host_arena_used_bytes(),
                             std::memory_order_relaxed);
      }
      report.shards[i] =
          census_shard(catalog, i, worlds[i], options.max_clients);
    }
  } else if (options.isolate) {
    // Isolated census: misses run in supervised worker processes; cache
    // consults and artifact puts stay in the supervisor. A shard that
    // crashes every attempt keeps a zeroed census record (provider name
    // only), listed in crashed_providers, and the campaign completes.
    const std::size_t jobs =
        options.jobs == 0 ? std::max(1u, std::thread::hardware_concurrency())
                          : options.jobs;
    report.jobs = jobs;
    report.execution_isolated = true;
    std::vector<std::string> names;
    names.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      names.push_back(catalog.providers[i].spec.name);

    std::vector<std::size_t> todo;
    for (std::size_t i = 0; i < n; ++i) {
      if (fetch_one(i, &report.shards[i])) continue;
      todo.push_back(i);
    }

    SupervisorOptions sup;
    sup.jobs = jobs;
    sup.max_shard_retries = options.max_shard_retries;
    sup.term_grace_s = options.term_grace_s;
    sup.worker_argv = options.worker_argv;
    sup.graceful = true;  // census shards degrade, never hard-fail the run
    sup.interrupt = options.interrupt;

    ShardSupervisor supervisor(
        sup, names, [&compute_one](std::uint32_t index, std::uint32_t) {
          return encode_shard_census(compute_one(index));
        });
    const obs::StatusOptions no_status;
    SupervisorResult sres = supervisor.run(
        todo, nullptr, no_status,
        [&](std::size_t i, const SupervisedShard& s) {
          if (s.outcome == SupervisedShard::Outcome::kDone)
            store_one(i, s.payload);
        });

    for (std::size_t i : todo) {
      const SupervisedShard& s = sres.shards[i];
      ScaledShardCensus decoded;
      if (s.outcome == SupervisedShard::Outcome::kDone &&
          decode_shard_census(s.payload, &decoded) &&
          decoded.provider == names[i]) {
        report.shards[i] = std::move(decoded);
        continue;
      }
      report.shards[i] = ScaledShardCensus{};
      report.shards[i].provider = names[i];
      report.shards[i].modeled_subscribers = catalog.subscribers[i];
      if (s.outcome != SupervisedShard::Outcome::kSkipped &&
          s.outcome != SupervisedShard::Outcome::kPending)
        report.crashed_providers.push_back(names[i]);
    }
    report.interrupted = sres.interrupted;
    report.process_spawns = sres.spawns;
    report.process_crashes = sres.crashes;
  } else if (options.jobs == 1) {
    report.jobs = 1;
    for (std::size_t i = 0; i < n; ++i) report.shards[i] = run_one(i);
  } else {
    util::TaskPool pool(options.jobs);
    report.jobs = pool.worker_count();
    std::vector<std::future<ScaledShardCensus>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      futures.push_back(pool.submit([&run_one, i] { return run_one(i); }));
    // Canonical catalog-order merge, independent of scheduling.
    for (std::size_t i = 0; i < n; ++i) report.shards[i] = futures[i].get();
  }

  report.arena_reserved_bytes = arena_reserved.load();
  report.arena_used_bytes = arena_used.load();

  // Canonical payload serialization (catalog order; telemetry excluded).
  report.payload = "provider,vantage_points,hosts,clients,subscribers,addr_fp\n";
  for (const auto& s : report.shards)
    report.payload += util::format(
        "%s,%u,%u,%u,%u,%016llx\n", s.provider.c_str(), s.vantage_points,
        s.hosts, s.clients, s.modeled_subscribers,
        static_cast<unsigned long long>(s.address_fingerprint));
  report.payload_fingerprint = util::fnv1a(report.payload);

  report.peak_rss_kb = util::peak_rss_kb();
  report.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace vpna::core

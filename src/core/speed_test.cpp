#include "core/speed_test.h"

#include "obs/metrics.h"

namespace vpna::core {

SpeedTestResult run_speed_test(inet::World& world, netsim::Host& client,
                               const netsim::IpAddr& gateway,
                               const SpeedTestOptions& options) {
  SpeedTestResult result;
  if (!world.network().any_link_capacity()) return result;

  transport::StreamSpec spec;
  spec.src = &client;
  spec.dst = gateway;
  spec.config.duration_s = options.duration_s;
  spec.config.packet_bytes = options.packet_bytes;
  spec.config.source_bitrate_bps = 0.0;  // full-buffer: probe the path

  const auto stats = transport::run_streams(world.network(), {spec});
  const auto& s = stats.front();
  if (!s.ran) return result;

  result.ran = true;
  result.goodput_mbps = s.goodput_mbps();
  result.base_rtt_ms = s.base_rtt_ms;
  result.min_rtt_ms = s.min_rtt_ms;
  result.queue_delay_mean_ms = s.queue_delay_mean_ms;
  result.queue_delay_max_ms = s.queue_delay_max_ms;
  result.queue_delay_p50_ms = obs::histogram_quantile(s.queue_delay_hist_ms, 0.50);
  result.queue_delay_p90_ms = obs::histogram_quantile(s.queue_delay_hist_ms, 0.90);
  result.queue_delay_p99_ms = obs::histogram_quantile(s.queue_delay_hist_ms, 0.99);
  result.loss_rate = s.loss_rate();
  result.ecn_rate = s.ecn_rate();
  result.sent_packets = s.sent_packets;
  result.delivered_packets = s.delivered_packets;
  result.queue_drops = s.queue_drops;
  result.fault_drops = s.fault_drops;
  result.ecn_marks = s.ecn_marks;
  result.cwnd_decreases = s.cwnd_decreases;
  obs::count("test.speed_test.runs");
  return result;
}

}  // namespace vpna::core

// Parallel campaign engine: shards the §5.3 evaluation at provider
// granularity across a work-stealing pool, with a hard determinism
// contract — every provider runs in its own isolated shard testbed whose
// world seed derives only from (campaign seed, provider name), and shard
// reports merge back in canonical catalog order, so the aggregated report
// is byte-identical at any worker count and under any scheduling order.
#pragma once

#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/runner.h"
#include "ecosystem/scale.h"
#include "netsim/routing_plane.h"
#include "obs/export.h"
#include "obs/status.h"
#include "store/artifact_store.h"
#include "util/task_pool.h"

namespace vpna::core {

struct CampaignOptions {
  // Per-vantage-point suite options, applied inside every shard runner.
  RunnerOptions runner;
  // Worker threads; 0 = hardware concurrency, 1 = serial (in-caller)
  // execution of the very same shard tasks.
  std::size_t jobs = 1;
  // Shard-level retry/timeout policy (generalizes connect_attempts one
  // level up: a whole provider shard that throws or overruns its budget is
  // re-run from scratch — shards are pure, so a re-run is identical).
  int shard_attempts = 1;
  double shard_timeout_s = 0.0;  // 0 = no budget
  // Share one all-pairs routing plane (ecosystem::shared_backbone_plane())
  // across all shard worlds instead of letting each shard compute its own.
  // Read-only sharing: results are identical either way (the cross-shard
  // determinism test proves it); off only for A/B benchmarking.
  bool share_routing_plane = true;
  // Observability: when trace.enabled, every shard runs under its own
  // TraceRecorder + MetricsRegistry (bound to the shard's sim clock) and
  // the per-shard observations come back in CampaignReport::traces. Trace
  // content is part of the determinism contract: byte-identical exports at
  // any `jobs` (unless trace.capture_wall opts into wall-clock data).
  obs::TraceConfig trace;
  // Health plane: live progress heartbeats, an optional --status-file JSON
  // rewritten atomically on every monitor tick, and a watchdog that flags
  // shards running far past the completed-shard median. Pure wall-clock
  // telemetry — never touches the deterministic payload (the health-plane
  // identity test byte-compares payloads with this on and off).
  obs::StatusOptions status;
  // Content-addressed shard cache (store::ArtifactStore). Off by default;
  // when enabled, each shard consults the store before building its world
  // and replays a cached report through the same canonical-order merge.
  // Sound because shards are pure: equal ShardKey implies a byte-identical
  // report, so the payload is invariant under cache mode (the cache
  // identity test byte-compares payloads off/rw/ro, cold and warm).
  // Traced runs bypass the cache — a ShardTrace is not part of the cached
  // artifact, so a hit could not reproduce it.
  store::CacheConfig cache;

  // --- process isolation (`--isolate`) --------------------------------------
  // Run every shard in a supervised worker process instead of a pool
  // thread: reports stream back as checksummed frames, and a worker that
  // segfaults, is OOM-killed, or hangs is contained — its shard retries on
  // a fresh process and, exhausted, quarantines while the campaign
  // completes. The payload stays byte-identical to the in-process engine
  // (same shard purity, same canonical merge; the isolate identity test
  // byte-compares them). Incompatible with tracing (a ShardTrace cannot
  // stream over the frame protocol): isolate + trace.enabled throws.
  bool isolate = false;
  // Re-runs granted after a shard's first isolated attempt (crash or
  // in-worker exception alike). The in-process `shard_attempts` knob is
  // ignored under isolation — this is the whole retry policy.
  int max_shard_retries = 2;
  // SIGTERM→SIGKILL grace for hang escalation and shutdown.
  double term_grace_s = 2.0;
  // Exec-mode worker command line (a process that speaks the worker
  // protocol on its stdio, e.g. `full_campaign ... --vpna-worker`). Empty
  // = fork mode: workers fork from this process, no exec.
  std::vector<std::string> worker_argv;
  // Durable append-only journal (store::CampaignJournal). Empty = none.
  std::string journal_path;
  // Replay journaled-done shards whose artifacts still fetch + decode
  // (requires `cache`); everything else recomputes. Resume against a
  // journal from a different campaign configuration throws.
  bool resume = false;
  // Cooperative SIGINT/SIGTERM flag: when non-zero the supervisor stops
  // dispatching, reaps workers, and returns with interrupted = true.
  const volatile std::sig_atomic_t* interrupt = nullptr;
};

// Per-shard cache provenance, recorded in canonical catalog order alongside
// `providers`. Telemetry, not payload: outcomes depend on what the store
// held before the run.
struct ShardCacheRecord {
  enum class Outcome : std::uint8_t {
    kBypass,   // cache not consulted (disabled, traced, or failed shard)
    kHit,      // artifact fetched, decoded, and replayed — world never built
    kMiss,     // no artifact under this key; shard recomputed
    kCorrupt,  // artifact present but failed integrity/decode; recomputed
  };
  std::string provider;
  std::string key_id;   // content address (hex); empty when cache disabled
  Outcome outcome = Outcome::kBypass;
  bool stored = false;  // recomputed result written back to the store
  std::uint64_t bytes = 0;  // artifact payload bytes read (hit) or written
};

[[nodiscard]] std::string_view cache_outcome_name(
    ShardCacheRecord::Outcome outcome) noexcept;

// Aggregate view over a run's cache records (manifest + CLI summaries).
struct CacheSummary {
  std::size_t shards = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t corrupt = 0;
  std::size_t bypassed = 0;
  std::size_t stored = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

[[nodiscard]] CacheSummary summarize_cache(
    const std::vector<ShardCacheRecord>& records) noexcept;

// The aggregated campaign result. `providers` is the deterministic payload
// (canonical catalog order); `workers`/`wall_s` are scheduling telemetry
// and legitimately vary run to run — serialize only `providers` when
// comparing campaigns for equivalence.
struct CampaignReport {
  std::uint64_t seed = 0;
  std::size_t jobs = 1;
  std::vector<ProviderReport> providers;
  // Providers whose shard failed every attempt (empty in healthy runs);
  // a placeholder report with connected=false vantage points remains in
  // `providers` so catalog order is preserved. Under an active fault
  // profile exhausted shards are *quarantined* instead (see
  // degraded_providers) and never land here — this list is reserved for
  // hard failures that should fail the run.
  std::vector<std::string> failed_providers;
  // Providers that completed degraded under a fault profile: quarantined
  // shards plus shards with at least one degraded vantage point. Canonical
  // catalog order; always empty under FaultProfile::kOff. Part of the
  // deterministic payload.
  std::vector<std::string> degraded_providers;
  // Per-shard observations, aligned with `providers` (canonical catalog
  // order); empty when tracing is disabled. Deterministic payload: the
  // trace-determinism suite byte-compares its exports across worker counts.
  std::vector<obs::ShardTrace> traces;
  std::vector<util::WorkerCounters> workers;
  // Watchdog records raised during the run (wall-clock telemetry like
  // `workers`/`wall_s`: varies run to run, excluded from the payload).
  // Empty unless CampaignOptions::status armed the watchdog.
  std::vector<obs::WatchdogAlert> watchdog_alerts;
  // Cache provenance, aligned with `providers` (canonical catalog order);
  // empty when the cache is disabled. Telemetry — store state varies run
  // to run, so this never feeds the payload.
  std::vector<ShardCacheRecord> cache_records;
  // --- isolate-mode provenance/telemetry ------------------------------------
  // True when the run used supervised worker processes.
  bool execution_isolated = false;
  // True when a SIGINT/SIGTERM interrupt cut the run short; unfinished
  // shards hold empty placeholders and the payload is incomplete.
  bool interrupted = false;
  // Providers quarantined because their shard *crashed* every isolated
  // attempt (worker death/kill, not an in-shard exception). Canonical
  // catalog order. Distinct from fault-profile quarantine: a crash
  // quarantine is an engine-health event and fails the run with its own
  // exit code even though the campaign completed.
  std::vector<std::string> crash_quarantined_providers;
  // Shards replayed from the journal + artifact store by --resume.
  std::size_t resumed_shards = 0;
  // Worker-process lifecycle counters (wall-clock telemetry).
  std::size_t process_spawns = 0;
  std::size_t process_crashes = 0;
  std::size_t process_kills = 0;
  std::size_t process_timeouts = 0;
  std::vector<obs::ProcessStatus> processes;  // final per-slot snapshot
  double wall_s = 0.0;
};

// Runs the full suite for one provider in an isolated shard testbed built
// by ecosystem::build_provider_shard(name, campaign_seed). Pure: the
// result depends only on (name, campaign_seed, options) — `plane` is a
// read-only accelerator handed to the shard world (nullptr = the shard
// computes its own) and never changes the result. Throws
// std::invalid_argument for unknown provider names.
[[nodiscard]] ProviderReport run_provider_shard(
    const std::string& name, std::uint64_t campaign_seed,
    const RunnerOptions& options,
    std::shared_ptr<const netsim::RoutingPlane> plane = nullptr);

// Traced variant: runs the shard under a fresh TraceRecorder/MetricsRegistry
// bound to the shard world's sim clock and returns the observation through
// `out` (ignored when !trace.enabled or out == nullptr). Still pure — the
// trace is as deterministic as the report.
[[nodiscard]] ProviderReport run_provider_shard(
    const std::string& name, std::uint64_t campaign_seed,
    const RunnerOptions& options, const obs::TraceConfig& trace,
    obs::ShardTrace* out,
    std::shared_ptr<const netsim::RoutingPlane> plane = nullptr);

// Content address of one provider shard under the base evaluated catalog:
// (code epoch, payload format, per-provider catalog-slice fingerprint,
// shard seed, fault profile, capacity profile, runner-options fingerprint)
// — exactly the inputs run_provider_shard is a pure function of. Exposed
// for tests and --explain-cache; the campaign derives the same keys
// internally.
[[nodiscard]] store::ShardKey campaign_shard_key(const std::string& name,
                                                 std::uint64_t seed,
                                                 const RunnerOptions& options);

// --- scaled campaigns --------------------------------------------------------
// The O(10³)-provider census path: every provider in a synthetic scaled
// catalog gets its own shard world (same shard_seed discipline as the paper
// campaign), each shard reports a deterministic census record, and records
// merge in canonical catalog order. The payload is byte-identical at any
// `jobs` and in both materialization modes.

struct ScaledCampaignOptions {
  std::uint64_t seed = 20181031;
  // Worker threads; 0 = hardware concurrency, 1 = serial.
  std::size_t jobs = 1;
  // Eager mode materializes every shard world in the driver before any
  // census runs — the peak-RSS A/B baseline. The default (deferred) hands
  // workers DeferredShard handles materialized on first touch, bounding
  // peak RSS by the worker count instead of the shard count.
  bool eager = false;
  // Per-shard eyeball-client materialization cap (see ScaledShardOptions).
  std::uint32_t max_clients = 4;
  bool share_routing_plane = true;
  // Content-addressed census cache, keyed per provider on the scaled
  // catalog's provider_fingerprint() — independent of catalog size, so
  // growing N providers to N+1 recomputes exactly the one new shard.
  store::CacheConfig cache;
  // Process isolation (same machinery as CampaignOptions::isolate): census
  // shards run in supervised worker processes; a crashed shard retries and,
  // exhausted, keeps a zeroed census record so the catalog-order payload
  // still completes. Ignored in eager mode (the RSS baseline is in-process
  // by definition).
  bool isolate = false;
  int max_shard_retries = 2;
  double term_grace_s = 2.0;
  std::vector<std::string> worker_argv;  // empty = fork-mode workers
  const volatile std::sig_atomic_t* interrupt = nullptr;
};

// One shard's deterministic census record.
struct ScaledShardCensus {
  std::string provider;
  std::uint32_t vantage_points = 0;      // deployed, incl. reseller aliases
  std::uint32_t hosts = 0;               // shard-world host count
  std::uint32_t clients = 0;             // materialized subscriber eyeballs
  std::uint32_t modeled_subscribers = 0; // catalog count (not materialized)
  std::uint64_t address_fingerprint = 0; // FNV over vantage addrs, deploy order
};

struct ScaledCampaignReport {
  std::uint64_t seed = 0;
  std::size_t jobs = 1;
  bool eager = false;
  std::vector<ScaledShardCensus> shards;  // canonical catalog order
  std::uint64_t catalog_fingerprint = 0;
  // Canonical serialization of `shards` and its hash — the deterministic
  // payload (compare across jobs / materialization modes by this).
  std::string payload;
  std::uint64_t payload_fingerprint = 0;
  // Arena bytes summed over shard worlds (deterministic: a pure function
  // of the build sequence). Covers only shards actually built this run —
  // cache hits skip world construction entirely, so warm runs report 0.
  std::uint64_t arena_reserved_bytes = 0;
  std::uint64_t arena_used_bytes = 0;
  // Cache provenance in canonical catalog order; empty when disabled.
  std::vector<ShardCacheRecord> cache_records;
  // Isolate-mode provenance: providers whose census shard crashed every
  // attempt (zeroed record in `shards`), plus process telemetry.
  bool execution_isolated = false;
  bool interrupted = false;
  std::vector<std::string> crashed_providers;
  std::size_t process_spawns = 0;
  std::size_t process_crashes = 0;
  // Wall-clock telemetry, excluded from the payload.
  std::size_t peak_rss_kb = 0;
  double wall_s = 0.0;
};

[[nodiscard]] ScaledCampaignReport run_scaled_campaign(
    const ecosystem::ScaledCatalog& catalog,
    const ScaledCampaignOptions& options = {});

// One scaled shard's census, computed in isolation: builds the provider's
// shard world, censuses it, and tears it down. This is the worker-process
// entry point for isolated scaled campaigns (`--scale --isolate`); pure,
// so it agrees byte for byte with the in-process engine.
[[nodiscard]] ScaledShardCensus run_scaled_census_shard(
    const ecosystem::ScaledCatalog& catalog, std::size_t index,
    const ScaledCampaignOptions& options,
    std::shared_ptr<const netsim::RoutingPlane> plane = nullptr);

// Content address of one scaled census shard: same six-field shape as
// campaign_shard_key, with the catalog slice fingerprint coming from
// ScaledCatalog::provider_fingerprint and the options fingerprint covering
// the census-shaping scaled options (max_clients).
[[nodiscard]] store::ShardKey scaled_shard_key(
    const ecosystem::ScaledCatalog& catalog, const std::string& name,
    const ScaledCampaignOptions& options);

class ParallelCampaign {
 public:
  explicit ParallelCampaign(CampaignOptions options = {});

  // Runs shards for the named providers; an empty list means the full
  // evaluated catalog. Names are canonicalized to catalog order (unknown
  // names dropped, duplicates collapsed) before sharding, so the caller's
  // ordering never influences the result.
  [[nodiscard]] CampaignReport run(const std::vector<std::string>& names = {},
                                   std::uint64_t seed = 20181031);

 private:
  CampaignOptions options_;
};

}  // namespace vpna::core

// Canonical byte codec for shard reports — the artifact payload of the
// content-addressed campaign cache.
//
// encode_provider_report() serializes every field of a ProviderReport
// (all nested suite results, degradation records, speed-test stats,
// optionals, doubles bit-exact) into a versioned little-endian byte
// string; decode_provider_report() is its strict inverse. The contract is
// byte-level round-tripping: decode(encode(r)) == r field-for-field and
// encode(decode(bytes)) == bytes — the randomized codec fuzz suite
// enforces both, so a cached shard replayed through the canonical-order
// merge is indistinguishable from a recomputed one.
//
// Decoding is defensive, never trusting: every read is bounds-checked,
// every enum is range-validated, trailing bytes are rejected, and the
// format version must match exactly. A failed decode returns false with
// the output untouched semantics-wise (contents unspecified) — the cache
// layer treats it as a corrupt artifact and recomputes. It never throws
// and never reads out of bounds (the fuzz suite runs under ASan).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/runner.h"

namespace vpna::core {

// Bumped whenever the encoding changes shape. Folded into the cache key
// (store::ShardKey::payload_format) so old artifacts are simply never
// addressed by new code; the in-band check below is the belt to that
// suspenders.
inline constexpr std::uint32_t kShardReportFormatVersion = 1;

[[nodiscard]] std::string encode_provider_report(const ProviderReport& report);

// Strict inverse of encode_provider_report: false on any malformed input
// (short buffer, bad enum, version mismatch, trailing bytes).
[[nodiscard]] bool decode_provider_report(std::string_view bytes,
                                          ProviderReport* out);

// FNV-1a fingerprint over every RunnerOptions field that can change a
// shard report's bytes (vantage-point budget, suite toggles, attempt
// counts, fault profile, speed-test configuration). Purely presentational
// or scheduling options never feed this. One of the six ShardKey fields.
[[nodiscard]] std::uint64_t runner_options_fingerprint(
    const RunnerOptions& options);

// --- scaled census codec -----------------------------------------------------
// The scaled campaign's per-shard artifact is a ScaledShardCensus (defined
// in core/parallel_campaign.h) — a handful of counts and a fingerprint,
// encoded under the same strict-decode discipline.

struct ScaledShardCensus;

inline constexpr std::uint32_t kShardCensusFormatVersion = 1;

[[nodiscard]] std::string encode_shard_census(const ScaledShardCensus& census);
[[nodiscard]] bool decode_shard_census(std::string_view bytes,
                                       ScaledShardCensus* out);

}  // namespace vpna::core

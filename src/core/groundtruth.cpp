#include "core/groundtruth.h"

#include "dns/client.h"
#include "http/client.h"
#include "tlssim/handshake.h"

namespace vpna::core {

const std::string* GroundTruth::dom(std::string_view hostname) const {
  const auto it = doms.find(std::string(hostname));
  return it == doms.end() ? nullptr : &it->second;
}

const std::string* GroundTruth::fingerprint(std::string_view hostname) const {
  const auto it = cert_fingerprints.find(std::string(hostname));
  return it == cert_fingerprints.end() ? nullptr : &it->second;
}

GroundTruth collect_ground_truth(inet::World& world, netsim::Host& clean_host) {
  GroundTruth gt;
  http::HttpClient client(world.network(), clean_host);

  const auto record_site = [&](std::string_view hostname, bool collect_tls) {
    const std::string url = "http://" + std::string(hostname) + "/";
    const auto res = client.fetch(url);
    if (res.ok()) {
      gt.doms[std::string(hostname)] = res.body;
      gt.final_urls[std::string(hostname)] = res.final_url.str();
    }
    if (collect_tls) {
      const auto lookup = dns::resolve_system(world.network(), clean_host,
                                              hostname, dns::RrType::kA);
      if (lookup.ok() && !lookup.addresses.empty()) {
        const auto hs =
            tlssim::tls_handshake(world.network(), clean_host,
                                  lookup.addresses.front(), hostname,
                                  world.ca_store());
        if (hs.completed() && hs.chain->leaf() != nullptr)
          gt.cert_fingerprints[std::string(hostname)] =
              hs.chain->leaf()->key_fingerprint;
      }
    }
  };

  for (const auto& site : inet::dom_test_sites())
    record_site(site.hostname, site.https_available);
  for (const auto& site : inet::tls_scan_sites())
    record_site(site.hostname, site.https_available);
  record_site(inet::honeysite_plain(), false);
  record_site(inet::honeysite_ads(), false);
  return gt;
}

}  // namespace vpna::core

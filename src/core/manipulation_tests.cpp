#include "core/manipulation_tests.h"

#include <set>

#include "dns/client.h"
#include "http/client.h"
#include "tlssim/handshake.h"
#include "util/strings.h"

namespace vpna::core {

DnsManipulationResult run_dns_manipulation_test(inet::World& world,
                                                netsim::Host& client) {
  DnsManipulationResult out;
  // A small fixed panel of popular names whose WHOIS records parse cleanly
  // (the paper's test works the same way, with human follow-up).
  const std::vector<std::string> names = {
      "daily-courier-news.com", "bargain-basket.com", "chatter-square.com",
      "global-mart-online.com", "stock-ticker-watch.com",
      "streambox-video.com",    "linkedin.com",       "wikipedia.org",
  };

  for (const auto& name : names) {
    ++out.names_tested;
    const auto via_default =
        dns::resolve_system(world.network(), client, name, dns::RrType::kA);
    const auto via_google = dns::query(world.network(), client,
                                       world.google_dns(), name, dns::RrType::kA);
    if (!via_default.ok() || !via_google.ok()) continue;
    if (via_default.addresses.empty() || via_google.addresses.empty()) continue;
    if (via_default.addresses.front() == via_google.addresses.front()) continue;

    DnsMismatch mismatch;
    mismatch.hostname = name;
    mismatch.via_default = via_default.addresses.front().str();
    mismatch.via_google = via_google.addresses.front().str();
    const auto owner_default = world.whois().lookup(via_default.addresses.front());
    const auto owner_google = world.whois().lookup(via_google.addresses.front());
    mismatch.default_owner =
        owner_default ? owner_default->organisation : "(unknown)";
    mismatch.google_owner =
        owner_google ? owner_google->organisation : "(unknown)";
    // CDN rotation yields different addresses under the same owner;
    // different (or unknown) ownership flags the answer for investigation.
    mismatch.suspicious = mismatch.default_owner != mismatch.google_owner ||
                          mismatch.default_owner == "(unknown)";
    out.mismatches.push_back(std::move(mismatch));
  }
  return out;
}

std::vector<const PageObservation*> DomCollectionResult::unrelated_redirects()
    const {
  std::vector<const PageObservation*> out;
  for (const auto& p : pages)
    if (p.redirect == RedirectClass::kUnrelated) out.push_back(&p);
  return out;
}

std::vector<const PageObservation*> DomCollectionResult::modified_doms() const {
  std::vector<const PageObservation*> out;
  for (const auto& p : pages)
    if (p.load_ok && !p.dom_matches_groundtruth) out.push_back(&p);
  return out;
}

namespace {

PageObservation observe_page(inet::World& world, netsim::Host& client,
                             const GroundTruth& truth,
                             std::string_view hostname) {
  PageObservation obs;
  obs.hostname = std::string(hostname);

  http::HttpClient c(world.network(), client);
  const auto load = c.load_page("http://" + obs.hostname + "/");
  obs.load_ok = load.document.ok();
  obs.final_host = load.document.final_url.host;

  if (!load.document.exchanges.empty() &&
      load.document.exchanges.front().status >= 300 &&
      load.document.exchanges.front().status < 400) {
    obs.redirect = http::domains_related(hostname, obs.final_host)
                       ? RedirectClass::kRelated
                       : RedirectClass::kUnrelated;
  }

  if (obs.load_ok) {
    // DOM comparison only makes sense when the load actually ended on the
    // requested site with content; a redirected load (censorship block
    // page) is already classified via `redirect`, and an empty 200 is the
    // VPN-range blocking behaviour the TLS test accounts separately.
    if (const auto* gt_dom = truth.dom(hostname);
        gt_dom != nullptr && obs.redirect == RedirectClass::kNone &&
        !load.dom().empty())
      obs.dom_matches_groundtruth = load.dom() == *gt_dom;
    // Request-log diff: anything fetched that ground truth does not
    // explain (same-origin resources and the known ad slot are expected).
    for (const auto& url : load.requested_urls) {
      const auto parsed = http::Url::parse(url);
      if (!parsed) continue;
      if (parsed->host == hostname) continue;
      if (parsed->host == "ads.adnet-one.com") continue;  // honeysite slot
      obs.unexpected_request_urls.push_back(url);
    }
  }
  return obs;
}

}  // namespace

DomCollectionResult run_dom_collection_test(inet::World& world,
                                            netsim::Host& client,
                                            const GroundTruth& truth) {
  DomCollectionResult out;
  for (const auto& site : inet::dom_test_sites())
    out.pages.push_back(observe_page(world, client, truth, site.hostname));
  out.pages.push_back(
      observe_page(world, client, truth, inet::honeysite_plain()));
  out.pages.push_back(observe_page(world, client, truth, inet::honeysite_ads()));
  return out;
}

int TlsTestResult::interception_count() const {
  int n = 0;
  for (const auto& h : hosts)
    if (h.handshake_ok && (!h.chain_valid || !h.fingerprint_matches)) ++n;
  return n;
}

int TlsTestResult::stripped_count() const {
  int n = 0;
  for (const auto& h : hosts)
    if (h.upgrade_stripped) ++n;
  return n;
}

int TlsTestResult::blocked_count() const {
  int n = 0;
  for (const auto& h : hosts)
    if (h.blocked_403 || h.empty_200) ++n;
  return n;
}

TlsTestResult run_tls_test(inet::World& world, netsim::Host& client,
                           const GroundTruth& truth) {
  TlsTestResult out;
  http::HttpClient c(world.network(), client);

  const auto observe = [&](std::string_view hostname, bool https_available) {
    TlsObservation obs;
    obs.hostname = std::string(hostname);

    // Step 1: direct TLS negotiation + fingerprint comparison.
    if (https_available) {
      const auto lookup = dns::resolve_system(world.network(), client,
                                              hostname, dns::RrType::kA);
      if (lookup.ok() && !lookup.addresses.empty()) {
        const auto hs =
            tlssim::tls_handshake(world.network(), client,
                                  lookup.addresses.front(), hostname,
                                  world.ca_store());
        obs.handshake_ok = hs.completed();
        if (hs.completed()) {
          obs.chain_valid =
              hs.validation == tlssim::ValidationStatus::kValid;
          if (hs.chain->root() != nullptr)
            obs.presented_issuer = hs.chain->root()->issuer;
          if (const auto* gt_fp = truth.fingerprint(hostname))
            obs.fingerprint_matches =
                hs.chain->leaf()->key_fingerprint == *gt_fp;
        }
      }
    }

    // Step 2: HTTP-first load, following redirects.
    const auto res = c.fetch("http://" + obs.hostname + "/");
    obs.http_status = res.status;
    obs.upgraded_to_https = res.final_url.scheme == "https";
    obs.blocked_403 = res.status == 403;
    obs.empty_200 = res.status == 200 && res.body.empty();
    // Stripping = ground truth upgraded but this load stayed on HTTP
    // with a successful (non-blocked) response.
    const auto gt_final = truth.final_urls.find(obs.hostname);
    if (gt_final != truth.final_urls.end() &&
        util::starts_with(gt_final->second, "https://")) {
      obs.upgrade_stripped = res.ok() && !obs.upgraded_to_https;
    }
    out.hosts.push_back(std::move(obs));
  };

  for (const auto& site : inet::dom_test_sites())
    observe(site.hostname, site.https_available);
  for (const auto& site : inet::tls_scan_sites())
    observe(site.hostname, site.https_available);
  return out;
}

}  // namespace vpna::core

#include "core/infrastructure_tests.h"

#include <cmath>

#include "dns/client.h"
#include "http/client.h"

namespace vpna::core {

RecursiveDnsOriginResult run_recursive_dns_origin_test(inet::World& world,
                                                       netsim::Host& client,
                                                       std::string tag) {
  RecursiveDnsOriginResult out;
  // Tags become DNS labels: lowercase, with whitespace/dots flattened.
  for (char& c : tag) {
    if (c == ' ' || c == '.') c = '-';
  }
  out.tag = dns::canonical_name(tag);
  const std::string name =
      out.tag + "." + std::string(inet::probe_dns_zone());

  const auto before = world.probe_authority().query_log().size();
  const auto res =
      dns::resolve_system(world.network(), client, name, dns::RrType::kA);
  out.resolved = res.ok();

  // Find the log entry for our unique tag (queries are tagged precisely so
  // concurrent probes cannot be confused).
  const auto& log = world.probe_authority().query_log();
  for (std::size_t i = before; i < log.size(); ++i) {
    if (log[i].name == name) {
      out.resolver_seen = log[i].source;
      if (const auto owner = world.whois().lookup(log[i].source))
        out.resolver_owner = owner->organisation;
      break;
    }
  }
  return out;
}

std::vector<double> PingProbeResult::anchor_series() const {
  std::vector<double> out;
  for (const auto& t : targets) {
    if (!t.name.starts_with("anchor:")) continue;
    out.push_back(t.rtt_ms.value_or(std::nan("")));
  }
  return out;
}

PingProbeResult run_ping_probe_test(inet::World& world, netsim::Host& client) {
  PingProbeResult out;

  for (const auto& anchor : world.anchors()) {
    PingTarget t;
    t.name = "anchor:" + anchor.name;
    t.addr = anchor.addr;
    t.rtt_ms = world.network().ping(client, anchor.addr);
    out.targets.push_back(std::move(t));
  }
  for (const auto& root : world.root_servers()) {
    PingTarget t;
    t.name = std::string("root:") + root.letter;
    t.addr = root.addr;
    t.rtt_ms = world.network().ping(client, root.addr);
    out.targets.push_back(std::move(t));
  }
  for (const auto& [name, addr] :
       std::initializer_list<std::pair<const char*, netsim::IpAddr>>{
           {"gdns", world.google_dns()}, {"quad9", world.quad9_dns()}}) {
    PingTarget t;
    t.name = name;
    t.addr = addr;
    t.rtt_ms = world.network().ping(client, addr);
    out.targets.push_back(std::move(t));
  }

  if (!world.root_servers().empty()) {
    out.root_traceroute =
        world.network().traceroute(client, world.root_servers()[0].addr).hops;
  }
  return out;
}

GeoApiResult run_geo_api_test(inet::World& world, netsim::Host& client) {
  GeoApiResult out;
  http::HttpClient c(world.network(), client);
  const auto res = c.fetch("http://" + std::string(inet::geo_api_host()) + "/");
  if (!res.ok()) return out;
  // Body: {"country":"XX","city":"...",...} — pull the two fields.
  const auto find_field = [&](std::string_view key) -> std::string {
    const std::string marker = "\"" + std::string(key) + "\":\"";
    const auto pos = res.body.find(marker);
    if (pos == std::string::npos) return {};
    const auto start = pos + marker.size();
    const auto end = res.body.find('"', start);
    if (end == std::string::npos) return {};
    return res.body.substr(start, end - start);
  };
  out.country_code = find_field("country");
  out.city = find_field("city");
  out.answered = !out.country_code.empty();
  return out;
}

}  // namespace vpna::core

// Shard-process supervisor: the crash/hang containment engine behind
// `--isolate`.
//
// The supervisor runs `jobs` persistent worker processes, each executing
// one shard at a time in its own heap. Work is fed over the command pipe
// (core/worker_protocol.h) and results stream back as checksummed frames,
// so the supervisor's address space is never exposed to anything a shard
// does: a worker that segfaults, is OOM-killed, exits non-zero, corrupts
// its result stream, or hangs is *contained* —
//
//   death/garbage  → the in-flight shard is retried with exponential
//                    backoff on a fresh process, up to a retry budget,
//                    then reported as crashed (the campaign quarantines it
//                    and completes);
//   hang           → the hard per-shard timeout, or the PR 7 median-
//                    multiple watchdog, escalates: structured alert →
//                    SIGTERM → grace → SIGKILL, then the retry path above;
//   exception      → the worker catches it and reports an error frame (the
//                    process survives and takes more work); exhausted
//                    error retries surface like in-process exhaustion.
//
// The supervisor itself is single-threaded — one poll(2) loop over worker
// pipes — which keeps fork() safe in library (fork-without-exec) mode and
// makes every state transition deterministic given the same sequence of
// worker events. Completed shards invoke `on_terminal` immediately, which
// is where the campaign appends its journal record and files the artifact:
// a supervisor killed at any instant leaves a journal describing exactly
// the shards whose results are durable.
//
// Deterministic supervisor-crash injection (resume tests, CI):
//   VPNA_CRASH_SUPERVISOR=<n>[:kill|segv|exit]
// self-destructs the supervisor right after the n-th terminal outcome has
// been recorded (journal included) — the scripted stand-in for a host
// crash mid-campaign.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/status.h"

namespace vpna::core {

struct SupervisorOptions {
  std::size_t jobs = 1;
  // Re-runs granted to a shard after its first attempt (crash or error
  // frame alike). Total attempts = max_shard_retries + 1.
  int max_shard_retries = 2;
  // Exponential backoff between a shard's failed attempt and its re-run:
  // initial × 2^(attempt-1), capped. Wall-clock telemetry only — the
  // shard's recompute is deterministic regardless of when it happens.
  double backoff_initial_ms = 50.0;
  double backoff_max_ms = 2000.0;
  // Hard per-attempt wall budget (0 = none). Exceeding it starts the
  // TERM→KILL escalation.
  double shard_timeout_s = 0.0;
  // Grace between SIGTERM and SIGKILL during any escalation.
  double term_grace_s = 2.0;
  // Median-multiple watchdog (PR 7 semantics for the alert; isolate mode
  // escalates past the alert into TERM→KILL, because here a stuck shard
  // *can* be killed without taking the campaign down).
  double watchdog_multiple = 0.0;
  std::size_t watchdog_min_completed = 3;
  // Exec-mode worker command line; the supervisor appends nothing — the
  // command must start a process that runs shard_worker_loop on its
  // stdio (e.g. `full_campaign ... --vpna-worker`). Empty = fork mode:
  // workers are forked from this process and run `child_run` directly.
  std::vector<std::string> worker_argv;
  // Campaign-policy view of exhausted *error* shards (worker reported an
  // exception every attempt): true → status shows quarantined, false →
  // failed. Crashed shards always quarantine.
  bool graceful = false;
  // Cooperative interrupt (SIGINT/SIGTERM handler flag). When it becomes
  // non-zero the supervisor stops dispatching, TERM→KILLs workers, marks
  // unfinished shards kSkipped, and returns with interrupted=true.
  const volatile std::sig_atomic_t* interrupt = nullptr;
};

// Terminal state of one supervised shard.
struct SupervisedShard {
  enum class Outcome : std::uint8_t {
    kPending,  // never scheduled (not in `indices`, or run interrupted)
    kDone,     // ok frame received; `payload` holds the report bytes
    kError,    // every attempt ended in an in-worker exception
    kCrashed,  // every attempt ended in process death / kill / torn stream
    kSkipped,  // interrupted before completion
  };
  Outcome outcome = Outcome::kPending;
  int attempts = 0;
  std::string payload;  // canonical report bytes (kDone only)
  std::string error;    // last error/exit description (kError/kCrashed)
};

[[nodiscard]] std::string_view supervised_outcome_name(
    SupervisedShard::Outcome outcome) noexcept;

struct SupervisorResult {
  std::vector<SupervisedShard> shards;  // indexed by global shard index
  std::vector<obs::WatchdogAlert> alerts;
  // Final per-slot process telemetry (obs::ProcessStatus is also what the
  // supervisor pushes into the StatusBoard each tick).
  std::vector<obs::ProcessStatus> processes;
  std::size_t spawns = 0;
  std::size_t crashes = 0;   // process deaths with a shard in flight
  std::size_t kills = 0;     // timeout/watchdog escalations
  std::size_t timeouts = 0;  // attempts that hit the hard budget
  bool interrupted = false;
};

class ShardSupervisor {
 public:
  // `run(index, attempt)` executes in the CHILD (fork mode) and must
  // return the shard's canonical payload bytes; exceptions become error
  // frames. Ignored in exec mode (the exec'd binary brings its own).
  using ChildRun = std::function<std::string(std::uint32_t, std::uint32_t)>;
  // Invoked in the SUPERVISOR the moment a shard reaches a terminal
  // outcome (journal/artifact hook). Never invoked for kSkipped.
  using TerminalHook = std::function<void(std::size_t, const SupervisedShard&)>;

  ShardSupervisor(SupervisorOptions options, std::vector<std::string> names,
                  ChildRun child_run);

  // Runs the shards listed in `indices` (each < names.size()). `status`
  // may be null; when given, heartbeats and per-process info flow into it
  // and `status_opts.file` is rewritten atomically every interval.
  SupervisorResult run(const std::vector<std::size_t>& indices,
                       obs::StatusBoard* status,
                       const obs::StatusOptions& status_opts,
                       const TerminalHook& on_terminal = nullptr);

 private:
  SupervisorOptions options_;
  std::vector<std::string> names_;
  ChildRun child_run_;
};

}  // namespace vpna::core

// Ground-truth collection (§5.3.1): periodically fetching every test
// target from a known-clean vantage (the paper used a university IP) to
// build the whitelist that manipulation is judged against — page DOMs,
// certificate fingerprints, and the header-echo baseline.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "inet/world.h"

namespace vpna::core {

struct GroundTruth {
  // hostname -> pristine root-page DOM.
  std::map<std::string, std::string> doms;
  // hostname -> leaf certificate fingerprint.
  std::map<std::string, std::string> cert_fingerprints;
  // hostname -> final URL after redirects when fetched cleanly.
  std::map<std::string, std::string> final_urls;

  [[nodiscard]] const std::string* dom(std::string_view hostname) const;
  [[nodiscard]] const std::string* fingerprint(std::string_view hostname) const;
};

// Fetches every DOM-test site, honeysite and TLS-scan host from
// `clean_host` (a direct, non-VPN client) and records the pristine state.
[[nodiscard]] GroundTruth collect_ground_truth(inet::World& world,
                                               netsim::Host& clean_host);

}  // namespace vpna::core

// Per-vantage-point speed test (§5.3-adjacent performance suite): a
// full-buffer congestion-controlled stream from the measurement VM to the
// connected vantage point's gateway over the capacity-aware traffic
// plane, reporting throughput, queueing delay and ECN/drop rates — the
// simulated counterpart of running iperf3 through each tunnel.
//
// The suite only runs when the world has link capacities provisioned
// (ecosystem::apply_link_capacities); otherwise it returns ran=false and
// touches nothing, so capacity-less campaigns stay byte-identical.
#pragma once

#include <cstdint>

#include "inet/world.h"
#include "netsim/host.h"
#include "transport/stream.h"

namespace vpna::core {

struct SpeedTestOptions {
  double duration_s = 2.0;         // injection window, virtual seconds
  std::uint32_t packet_bytes = 1200;
};

struct SpeedTestResult {
  bool ran = false;  // false: no capacities provisioned or no route
  double goodput_mbps = 0.0;
  double base_rtt_ms = 0.0;
  double min_rtt_ms = 0.0;
  double queue_delay_mean_ms = 0.0;
  double queue_delay_max_ms = 0.0;
  // Bucket-interpolated percentiles of the per-ack queueing delay
  // (obs::histogram_quantile over kQueueDelayBucketsMs) — the scorecard
  // numbers; mean/max alone hide bufferbloat tails.
  double queue_delay_p50_ms = 0.0;
  double queue_delay_p90_ms = 0.0;
  double queue_delay_p99_ms = 0.0;
  double loss_rate = 0.0;
  double ecn_rate = 0.0;
  std::uint64_t sent_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t ecn_marks = 0;
  int cwnd_decreases = 0;
};

// Runs one speed-test stream from `client` to `gateway`:5201. Advances the
// world clock by the simulated episode (like every other suite).
[[nodiscard]] SpeedTestResult run_speed_test(inet::World& world,
                                             netsim::Host& client,
                                             const netsim::IpAddr& gateway,
                                             const SpeedTestOptions& options);

}  // namespace vpna::core

#include "core/worker_protocol.h"

#include <cstdlib>
#include <cstring>

#include <signal.h>
#include <time.h>
#include <unistd.h>

#include "util/rng.h"
#include "util/subprocess.h"

namespace vpna::core {

namespace {

constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 1 + 8;  // through `length`
constexpr std::size_t kTrailerSize = 8;                 // payload checksum
// A frame never legitimately exceeds this (the largest provider report
// encodes to a few hundred KiB); a longer length field means the stream
// is garbage, not a giant frame — poison instead of buffering gigabytes.
constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

}  // namespace

std::string encode_shard_frame(const ShardFrame& frame) {
  std::string out;
  out.reserve(kHeaderSize + frame.payload.size() + kTrailerSize);
  put_u32(&out, kWorkerFrameMagic);
  put_u32(&out, frame.index);
  put_u32(&out, frame.attempt);
  out.push_back(static_cast<char>(frame.status));
  put_u64(&out, frame.payload.size());
  out += frame.payload;
  put_u64(&out, util::fnv1a(frame.payload));
  return out;
}

void FrameReader::feed(std::string_view bytes) {
  if (!corrupt_) buffer_.append(bytes.data(), bytes.size());
}

FrameReader::Result FrameReader::next(ShardFrame* out) {
  if (corrupt_) return Result::kCorrupt;
  if (buffer_.size() < kHeaderSize) return Result::kNeedMore;
  const char* p = buffer_.data();
  if (get_u32(p) != kWorkerFrameMagic) {
    corrupt_ = true;
    return Result::kCorrupt;
  }
  const std::uint8_t status_byte = static_cast<unsigned char>(p[12]);
  const std::uint64_t length = get_u64(p + 13);
  if (status_byte > 1 || length > kMaxFramePayload) {
    corrupt_ = true;
    return Result::kCorrupt;
  }
  const std::size_t total = kHeaderSize + length + kTrailerSize;
  if (buffer_.size() < total) return Result::kNeedMore;
  const std::string_view payload(p + kHeaderSize,
                                 static_cast<std::size_t>(length));
  if (get_u64(p + kHeaderSize + length) != util::fnv1a(payload)) {
    corrupt_ = true;
    return Result::kCorrupt;
  }
  out->index = get_u32(p + 4);
  out->attempt = get_u32(p + 8);
  out->status = static_cast<ShardFrameStatus>(status_byte);
  out->payload.assign(payload);
  buffer_.erase(0, total);
  return Result::kFrame;
}

std::string encode_run_command(std::uint32_t index, std::uint32_t attempt) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "R %u %u\n", index, attempt);
  return buf;
}

bool parse_run_command(std::string_view line, std::uint32_t* index,
                       std::uint32_t* attempt) {
  unsigned i = 0, a = 0;
  char trailing = 0;
  const std::string s(line);
  if (std::sscanf(s.c_str(), "R %u %u%c", &i, &a, &trailing) < 2) return false;
  if (trailing != 0 && trailing != '\n') return false;
  *index = i;
  *attempt = a;
  return true;
}

std::optional<CrashDirective> parse_crash_directive(std::string_view spec) {
  if (spec.empty()) return std::nullopt;
  CrashDirective d;
  char* end = nullptr;
  const std::string s(spec);
  const unsigned long idx = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str()) return std::nullopt;
  d.index = static_cast<std::uint32_t>(idx);
  std::string_view rest(end);
  while (!rest.empty()) {
    if (rest.front() != ':') return std::nullopt;
    rest.remove_prefix(1);
    const std::size_t colon = rest.find(':');
    const std::string_view tok = rest.substr(0, colon);
    if (tok == "segv") {
      d.mode = CrashDirective::Mode::kSegv;
    } else if (tok == "exit") {
      d.mode = CrashDirective::Mode::kExit;
    } else if (tok == "hang") {
      d.mode = CrashDirective::Mode::kHang;
    } else if (tok == "always") {
      d.always = true;
    } else {
      return std::nullopt;
    }
    rest = colon == std::string_view::npos ? std::string_view{}
                                           : rest.substr(colon);
  }
  return d;
}

namespace {

// Self-destructs per the directive. Never returns.
[[noreturn]] void execute_crash(const CrashDirective& d, int out_fd) {
  switch (d.mode) {
    case CrashDirective::Mode::kSegv: {
      // Leave a torn frame behind first so the supervisor's partial-frame
      // discard path is what contains this death, then die by signal.
      ShardFrame torn;
      torn.index = d.index;
      torn.attempt = 1;
      torn.payload.assign(1024, 'x');
      const std::string bytes = encode_shard_frame(torn);
      (void)util::write_all(out_fd, std::string_view(bytes).substr(
                                        0, bytes.size() / 2));
      ::raise(SIGSEGV);
      ::_exit(124);  // unreachable unless SIGSEGV is blocked
    }
    case CrashDirective::Mode::kExit:
      ::_exit(41);
    case CrashDirective::Mode::kHang:
      for (;;) {
        struct timespec ts{1, 0};
        ::nanosleep(&ts, nullptr);
      }
  }
  ::_exit(124);
}

}  // namespace

int shard_worker_loop(
    int in_fd, int out_fd,
    const std::function<std::string(std::uint32_t, std::uint32_t)>& run) {
  std::optional<CrashDirective> crash;
  if (const char* spec = std::getenv("VPNA_CRASH_SHARD"))
    crash = parse_crash_directive(spec);

  std::string pending;
  for (;;) {
    // Pull one command line (commands are tiny; a blocking read per line
    // is fine — the fd is the worker's own blocking pipe end).
    std::size_t nl;
    while ((nl = pending.find('\n')) == std::string::npos) {
      char buf[256];
      const ssize_t n = ::read(in_fd, buf, sizeof(buf));
      if (n > 0) {
        pending.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return 0;  // EOF (or a dead supervisor): clean shutdown
    }
    const std::string line = pending.substr(0, nl + 1);
    pending.erase(0, nl + 1);

    std::uint32_t index = 0, attempt = 0;
    if (!parse_run_command(line, &index, &attempt)) return 2;

    if (crash && crash->index == index && (crash->always || attempt == 1))
      execute_crash(*crash, out_fd);

    ShardFrame frame;
    frame.index = index;
    frame.attempt = attempt;
    try {
      frame.payload = run(index, attempt);
      frame.status = ShardFrameStatus::kOk;
    } catch (const std::exception& e) {
      frame.status = ShardFrameStatus::kError;
      frame.payload = e.what();
    } catch (...) {
      frame.status = ShardFrameStatus::kError;
      frame.payload = "unknown exception";
    }
    if (!util::write_all(out_fd, encode_shard_frame(frame))) return 3;
  }
}

}  // namespace vpna::core

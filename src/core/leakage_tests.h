// Leakage tests (paper §5.3.3): DNS leakage, IPv6 leakage, and recovery
// from tunnel failure. All three work the way the paper's suite does —
// generate traffic, then scan the capture on the physical (non-VPN)
// interface for packets that should have ridden the tunnel; the failure
// test firewalls the VPN server and watches whether fixed outside hosts
// become reachable in the clear during a blocking window.
#pragma once

#include <string>
#include <vector>

#include "inet/world.h"
#include "transport/error.h"
#include "vpn/client.h"

namespace vpna::core {

struct DnsLeakResult {
  int queries_issued = 0;
  int plaintext_dns_on_physical_interface = 0;
  // Probes that died in transit rather than answering. Without these a
  // resolver outage looks identical to "no leak" (every query swallowed
  // into a zero-count record); fault-profile runs surface it instead.
  int queries_failed = 0;
  transport::Error last_error = transport::Error::none();
  [[nodiscard]] bool leaked() const {
    return plaintext_dns_on_physical_interface > 0;
  }
};

// Issues lookups to the system resolver and to public resolvers, then
// scans the eth0 capture for un-encapsulated DNS.
[[nodiscard]] DnsLeakResult run_dns_leak_test(inet::World& world,
                                              netsim::Host& client);

struct Ipv6LeakResult {
  int attempts = 0;
  int v6_packets_on_physical_interface = 0;
  int v6_connections_succeeded_outside_tunnel = 0;
  // Failed AAAA lookups / v6 connects, with the last transport error: a
  // vantage point that could not even attempt the test is distinguishable
  // from one that attempted it and saw no leak.
  int lookup_failures = 0;
  int connect_failures = 0;
  transport::Error last_error = transport::Error::none();
  [[nodiscard]] bool leaked() const {
    return v6_packets_on_physical_interface > 0;
  }
};

// Attempts IPv6 connections to dual-stack test sites and scans eth0 for
// cleartext v6 traffic.
[[nodiscard]] Ipv6LeakResult run_ipv6_leak_test(inet::World& world,
                                                netsim::Host& client);

struct TunnelFailureResult {
  bool failure_induced = false;
  double window_seconds = 180.0;
  int probes_sent = 0;
  int probes_escaped_clear = 0;  // reached the outside host off-tunnel
  // Probes that failed outright (expected while the tunnel is blocked and
  // the client holds fail-closed); kept so a probe plane broken by faults
  // is visible in the record rather than folded into "no leak".
  int probes_failed = 0;
  transport::Error last_probe_error = transport::Error::none();
  vpn::ClientState final_state = vpn::ClientState::kDisconnected;
  [[nodiscard]] bool leaked() const { return probes_escaped_clear > 0; }
};

// Induces tunnel failure by firewalling the VPN server (label
// "induced-failure"), probes fixed hosts for `window_seconds` of virtual
// time while ticking the client, then removes the block. The client is
// left in whatever state its failure policy produced.
[[nodiscard]] TunnelFailureResult run_tunnel_failure_test(
    inet::World& world, netsim::Host& client, vpn::VpnClient& vpn_client,
    double window_seconds = 180.0);

// WebRTC-style address disclosure (the Al-Fannah vulnerability the paper's
// related-work section says it audits): a page's ICE gathering exposes the
// host's interface addresses plus a STUN server-reflexive address. Even a
// perfectly tunnelled client discloses its true public address through host
// candidates — invisible to route/DNS configuration.
struct WebRtcLeakResult {
  std::vector<netsim::IpAddr> host_candidates;       // interface enumeration
  std::optional<netsim::IpAddr> reflexive_candidate; // via STUN
  bool connected_via_vpn = false;
  // The tell: the physical interface's public address appears among the
  // candidates a visited site would learn, despite the active tunnel.
  bool reveals_true_address = false;
};

[[nodiscard]] WebRtcLeakResult run_webrtc_leak_test(inet::World& world,
                                                    netsim::Host& client);

}  // namespace vpna::core

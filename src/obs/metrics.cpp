#include "obs/metrics.h"

#include <algorithm>

#include "util/strings.h"

namespace vpna::obs {

namespace detail {
thread_local MetricsRegistry* t_meter = nullptr;
}  // namespace detail

namespace {

// Renders a double without trailing noise ("3", "0.25", "12.5").
std::string num(double v) {
  std::string s = util::format("%.6g", v);
  return s;
}

}  // namespace

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
    return;
  }
  counters_.emplace(std::string(name), delta);
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
    return;
  }
  gauges_.emplace(std::string(name), value);
}

void histogram_observe(HistogramData& h, double value,
                       std::span<const double> bounds) {
  if (h.counts.empty()) {
    h.bounds.assign(bounds.begin(), bounds.end());
    h.counts.assign(bounds.size() + 1, 0);
  }
  std::size_t bucket = h.bounds.size();  // +inf by default
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    if (value <= h.bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++h.counts[bucket];
  ++h.total;
  h.sum += value;
}

double histogram_quantile(const HistogramData& h, double q) {
  if (h.total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The (1-based) rank of the target observation; q=0 still means "the
  // first observation", matching the sample-quantile convention of the
  // stats toolkit closely enough for bucket-width accuracy.
  const double rank = std::max(1.0, q * static_cast<double>(h.total));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const std::uint64_t in_bucket = h.counts[i];
    if (in_bucket == 0) continue;
    const double cum_before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= h.bounds.size())  // +inf bucket: the last finite bound is all
      return h.bounds.empty() ? 0.0 : h.bounds.back();
    const double upper = h.bounds[i];
    const double lower = i == 0 ? std::min(0.0, upper) : h.bounds[i - 1];
    const double frac =
        (rank - cum_before) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * frac;
  }
  return h.bounds.empty() ? 0.0 : h.bounds.back();
}

void MetricsRegistry::observe(std::string_view name, double value,
                              std::span<const double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), HistogramData{}).first;
  histogram_observe(it->second, value, bounds);
}

void MetricsRegistry::set_volatile(std::string_view name) {
  volatile_.emplace(std::string(name));
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    const auto it = counters_.find(name);
    if (it != counters_.end())
      it->second += value;
    else
      counters_.emplace(name, value);
  }
  for (const auto& [name, value] : other.gauges_) {
    const auto it = gauges_.find(name);
    if (it != gauges_.end())
      it->second = std::max(it->second, value);
    else
      gauges_.emplace(name, value);
  }
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
      continue;
    }
    HistogramData& mine = it->second;
    if (mine.bounds != h.bounds) continue;  // mismatched buckets: skip
    for (std::size_t i = 0; i < mine.counts.size(); ++i)
      mine.counts[i] += h.counts[i];
    mine.total += h.total;
    mine.sum += h.sum;
  }
  for (const auto& name : other.volatile_) volatile_.insert(name);
}

std::string MetricsRegistry::render_text(bool include_volatile) const {
  std::string out;
  const auto render_section = [&](bool want_volatile) {
    for (const auto& [name, value] : counters_) {
      if (volatile_.contains(name) != want_volatile) continue;
      out += util::format("counter %s %llu\n", name.c_str(),
                          static_cast<unsigned long long>(value));
    }
    for (const auto& [name, value] : gauges_) {
      if (volatile_.contains(name) != want_volatile) continue;
      out += util::format("gauge %s %s\n", name.c_str(), num(value).c_str());
    }
    for (const auto& [name, h] : histograms_) {
      if (volatile_.contains(name) != want_volatile) continue;
      out += util::format("histogram %s count=%llu sum=%s", name.c_str(),
                          static_cast<unsigned long long>(h.total),
                          num(h.sum).c_str());
      // Bucket-interpolated percentile summary (deterministic: a pure
      // function of the bucket counts, so it merges/compares like them).
      if (h.total > 0) {
        out += util::format(" p50=%s p90=%s p99=%s",
                            num(histogram_quantile(h, 0.50)).c_str(),
                            num(histogram_quantile(h, 0.90)).c_str(),
                            num(histogram_quantile(h, 0.99)).c_str());
      }
      out += "\n";
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        const std::string le =
            i < h.bounds.size() ? num(h.bounds[i]) : std::string("inf");
        out += util::format("  le_%s %llu\n", le.c_str(),
                            static_cast<unsigned long long>(h.counts[i]));
      }
    }
  };

  out += "# metrics (deterministic; canonical compare surface)\n";
  render_section(false);
  if (!include_volatile) return out;
  const bool any_volatile = !volatile_.empty();
  if (any_volatile) {
    out += std::string(kVolatileMetricsMarker) + "\n";
    render_section(true);
  }
  return out;
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t MetricsRegistry::counter_prefix_sum(
    std::string_view prefix) const {
  std::uint64_t sum = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    sum += it->second;
  }
  return sum;
}

std::optional<double> MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

const HistogramData* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

namespace detail {
MetricsRegistry* exchange_meter(MetricsRegistry* next) noexcept {
  MetricsRegistry* prev = t_meter;
  t_meter = next;
  return prev;
}
}  // namespace detail

}  // namespace vpna::obs

#include "obs/export.h"

#include <algorithm>

#include "util/strings.h"

namespace vpna::obs {

namespace {

// (shard index, event) reference used to build the canonical ordering.
struct Ref {
  std::size_t shard;
  const TraceEvent* ev;
};

std::vector<Ref> canonical_order(const std::vector<ShardTrace>& shards) {
  std::vector<Ref> refs;
  std::size_t total = 0;
  for (const auto& s : shards) total += s.events.size();
  refs.reserve(total);
  for (std::size_t i = 0; i < shards.size(); ++i)
    for (const auto& ev : shards[i].events) refs.push_back(Ref{i, &ev});
  // Stable: equal timestamps keep (shard, sequence) append order.
  std::stable_sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    return a.ev->sim_ts_us < b.ev->sim_ts_us;
  });
  return refs;
}

void append_args_object(std::string& out, const TraceEvent& ev) {
  out += "{";
  bool first = true;
  for (const auto& arg : ev.args) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(arg.key) + "\":\"" + json_escape(arg.value) +
           "\"";
  }
  if (ev.wall_dur_ms >= 0.0) {
    if (!first) out += ",";
    out += util::format("\"wall_ms\":%.3f", ev.wall_dur_ms);
  }
  out += "}";
}

}  // namespace

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += util::format("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

std::string chrome_trace_json(const std::vector<ShardTrace>& shards) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };

  emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
       "\"args\":{\"name\":\"vpna campaign (sim time)\"}}");
  for (std::size_t i = 0; i < shards.size(); ++i) {
    emit(util::format(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"%s\"}}",
        i + 1, json_escape(shards[i].shard).c_str()));
  }

  for (const auto& ref : canonical_order(shards)) {
    const TraceEvent& ev = *ref.ev;
    std::string line = util::format(
        "{\"ph\":\"%c\",\"pid\":1,\"tid\":%zu,\"name\":\"%s\","
        "\"cat\":\"%s\",\"ts\":%lld",
        ev.phase, ref.shard + 1, json_escape(ev.name).c_str(),
        json_escape(ev.category).c_str(),
        static_cast<long long>(ev.sim_ts_us));
    if (ev.phase == 'X') {
      // Spans still open at export render with zero duration.
      line += util::format(
          ",\"dur\":%lld",
          static_cast<long long>(ev.sim_dur_us < 0 ? 0 : ev.sim_dur_us));
    } else {
      line += ",\"s\":\"t\"";
    }
    line += ",\"args\":";
    append_args_object(line, ev);
    line += "}";
    emit(line);
  }
  out += "\n]}\n";
  return out;
}

std::string trace_jsonl(const std::vector<ShardTrace>& shards) {
  std::string out;
  for (const auto& ref : canonical_order(shards)) {
    const TraceEvent& ev = *ref.ev;
    out += util::format(
        "{\"shard\":\"%s\",\"id\":%u,\"parent\":%u,\"depth\":%u,"
        "\"ph\":\"%c\",\"name\":\"%s\",\"cat\":\"%s\",\"ts_us\":%lld,"
        "\"dur_us\":%lld,\"args\":",
        json_escape(shards[ref.shard].shard).c_str(), ev.id, ev.parent,
        ev.depth, ev.phase, json_escape(ev.name).c_str(),
        json_escape(ev.category).c_str(),
        static_cast<long long>(ev.sim_ts_us),
        static_cast<long long>(ev.sim_dur_us < 0 ? 0 : ev.sim_dur_us));
    append_args_object(out, ev);
    out += "}\n";
  }
  return out;
}

MetricsRegistry merged_metrics(const std::vector<ShardTrace>& shards) {
  MetricsRegistry merged;
  for (const auto& s : shards) merged.merge(s.metrics);
  return merged;
}

}  // namespace vpna::obs

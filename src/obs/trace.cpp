#include "obs/trace.h"

#include <chrono>

#include "util/strings.h"

namespace vpna::obs {

namespace detail {
thread_local TraceRecorder* t_tracer = nullptr;
}  // namespace detail
using detail::t_tracer;

namespace {

double wall_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceRecorder::TraceRecorder(TraceConfig config) : config_(config) {}

std::uint32_t TraceRecorder::begin_span(std::string_view name,
                                        std::string_view category) {
  TraceEvent ev;
  ev.id = static_cast<std::uint32_t>(events_.size() + 1);
  ev.parent = stack_.empty() ? 0 : stack_.back();
  ev.depth = static_cast<std::uint32_t>(stack_.size());
  ev.phase = 'X';
  ev.name.assign(name);
  ev.category.assign(category);
  ev.sim_ts_us = clock_ != nullptr ? clock_->now().micros() : 0;
  ev.sim_dur_us = -1;  // open
  events_.push_back(std::move(ev));
  stack_.push_back(events_.back().id);
  if (config_.capture_wall) wall_starts_.push_back(wall_now_ms());
  return events_.back().id;
}

void TraceRecorder::end_span(std::uint32_t id) {
  if (id == 0 || id > events_.size()) return;
  TraceEvent& ev = events_[id - 1];
  if (ev.phase != 'X' || ev.sim_dur_us >= 0) return;  // not open
  const std::int64_t now =
      clock_ != nullptr ? clock_->now().micros() : ev.sim_ts_us;
  ev.sim_dur_us = now - ev.sim_ts_us;
  // Pop the id from the open stack; RAII destruction order makes it the top
  // in practice, but tolerate out-of-order ends.
  for (std::size_t i = stack_.size(); i > 0; --i) {
    if (stack_[i - 1] != id) continue;
    if (config_.capture_wall && i - 1 < wall_starts_.size()) {
      ev.wall_dur_ms = wall_now_ms() - wall_starts_[i - 1];
      wall_starts_.erase(wall_starts_.begin() +
                         static_cast<std::ptrdiff_t>(i - 1));
    }
    stack_.erase(stack_.begin() + static_cast<std::ptrdiff_t>(i - 1));
    break;
  }
}

std::uint32_t TraceRecorder::add_instant(std::string_view name,
                                         std::string_view category) {
  TraceEvent ev;
  ev.id = static_cast<std::uint32_t>(events_.size() + 1);
  ev.parent = stack_.empty() ? 0 : stack_.back();
  ev.depth = static_cast<std::uint32_t>(stack_.size());
  ev.phase = 'i';
  ev.name.assign(name);
  ev.category.assign(category);
  ev.sim_ts_us = clock_ != nullptr ? clock_->now().micros() : 0;
  ev.sim_dur_us = 0;
  events_.push_back(std::move(ev));
  return events_.back().id;
}

void TraceRecorder::add_arg(std::uint32_t id, std::string_view key,
                            std::string_view value) {
  if (id == 0 || id > events_.size()) return;
  events_[id - 1].args.push_back(
      TraceArg{std::string(key), std::string(value)});
}

ScopedObservation::ScopedObservation(TraceRecorder* recorder,
                                     MetricsRegistry* metrics)
    : prev_tracer_(t_tracer),
      prev_meter_(detail::exchange_meter(metrics)) {
  t_tracer = recorder;
}

ScopedObservation::~ScopedObservation() {
  t_tracer = prev_tracer_;
  (void)detail::exchange_meter(prev_meter_);
}

Span::Span(std::string_view name, std::string_view category)
    : rec_(t_tracer) {
  if (rec_ != nullptr) id_ = rec_->begin_span(name, category);
}

Span& Span::operator=(Span&& o) noexcept {
  if (this != &o) {
    end();
    rec_ = o.rec_;
    id_ = o.id_;
    o.rec_ = nullptr;
  }
  return *this;
}

void Span::arg(std::string_view key, std::string_view value) {
  if (rec_ != nullptr) rec_->add_arg(id_, key, value);
}

void Span::arg(std::string_view key, std::int64_t value) {
  if (rec_ != nullptr)
    rec_->add_arg(id_, key,
                  util::format("%lld", static_cast<long long>(value)));
}

void Span::arg(std::string_view key, double value) {
  if (rec_ != nullptr) rec_->add_arg(id_, key, util::format("%.6g", value));
}

void Span::end() {
  if (rec_ == nullptr) return;
  rec_->end_span(id_);
  rec_ = nullptr;
}

Instant::Instant(std::string_view name, std::string_view category)
    : rec_(t_tracer) {
  if (rec_ != nullptr) id_ = rec_->add_instant(name, category);
}

void Instant::arg(std::string_view key, std::string_view value) {
  if (rec_ != nullptr) rec_->add_arg(id_, key, value);
}

void Instant::arg(std::string_view key, std::int64_t value) {
  if (rec_ != nullptr)
    rec_->add_arg(id_, key,
                  util::format("%lld", static_cast<long long>(value)));
}

}  // namespace vpna::obs

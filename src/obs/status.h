// Live campaign status: per-shard heartbeats, progress counters, an ETA
// derived from the completed-shard median wall time, and a watchdog that
// flags shards running far past that median.
//
// A StatusBoard is published to by the campaign engine (shard started /
// finished events, pool counter snapshots) and read by a monitor thread
// that periodically rewrites a --status-file JSON (atomic: write to a
// temporary, then rename) and runs the watchdog scan. Lock discipline is
// deliberately light: one mutex, taken only on the rare shard transitions
// and on snapshot — never on any per-packet or per-exchange path.
//
// Watchdog semantics: once at least `min_completed` shards have finished,
// any *running* shard whose elapsed wall time exceeds `multiple` × the
// median completed-shard wall time is flagged — once per shard, as a
// structured WatchdogAlert record next to the fault plane's Degradations.
// An alert never kills or preempts the shard (the pool cannot preempt, and
// a slow shard is usually a loaded machine, not a hang); it makes the
// stall visible while the run is still in flight.
//
// Everything here is wall-clock telemetry: it varies run to run and is
// quarantined from the deterministic campaign payload exactly like the
// volatile section of the metrics rendering.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace vpna::obs {

// Campaign status/watchdog configuration (CampaignOptions::status).
struct StatusOptions {
  // Status-file path; empty = no file written.
  std::string file;
  // Monitor rewrite/scan period in wall milliseconds.
  double interval_ms = 200.0;
  // Watchdog threshold: flag running shards exceeding this multiple of the
  // running median completed-shard wall time. 0 disables the watchdog.
  double watchdog_multiple = 0.0;
  // Completed shards required before the median is trusted.
  std::size_t watchdog_min_completed = 3;

  // True when the engine should stand up the board + monitor thread at
  // all; default options keep the whole plane off.
  [[nodiscard]] bool engaged() const noexcept {
    return !file.empty() || watchdog_multiple > 0.0;
  }
};

// Structured watchdog record: shard `shard` had been running `elapsed_s`
// when the running median of completed shards was `median_s`.
struct WatchdogAlert {
  std::string shard;
  int worker = -1;  // pool worker running it (-1 = serial / unknown)
  double elapsed_s = 0.0;
  double median_s = 0.0;

  [[nodiscard]] double ratio() const noexcept {
    return median_s > 0.0 ? elapsed_s / median_s : 0.0;
  }
};

// Pool counter snapshot folded into the status stream (mirrors
// util::WorkerCounters without dragging the pool header in here).
struct WorkerStatus {
  std::uint64_t tasks_run = 0;
  std::uint64_t steals = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  double busy_wall_s = 0.0;
};

// Per-worker-process telemetry for isolated (`--isolate`) campaigns: one
// entry per supervisor slot, pushed by the shard supervisor each status
// tick and carried verbatim into the JSON's "processes" array.
struct ProcessStatus {
  int slot = -1;
  long pid = -1;     // current process id; -1 when the slot is empty
  bool alive = false;
  std::size_t spawns = 0;       // processes this slot has started
  std::size_t shards_done = 0;  // ok frames received across all of them
  std::size_t crashes = 0;      // deaths with a shard in flight
  std::string shard;            // in-flight shard name; empty when idle
};

// Point-in-time view assembled by StatusBoard::snapshot().
struct StatusSnapshot {
  std::size_t total = 0;
  std::size_t completed = 0;  // done + quarantined + failed
  std::size_t done = 0;
  std::size_t quarantined = 0;
  std::size_t failed = 0;
  std::size_t running = 0;
  double percent = 0.0;    // completed / total, in percent
  double elapsed_s = 0.0;  // since begin()
  double median_shard_s = 0.0;  // median of successful shard walls (0 = none)
  // Median-based remaining-work estimate; negative while unknown (no
  // completed shard yet).
  double eta_s = -1.0;
  std::size_t jobs = 0;

  struct RunningShard {
    std::string shard;
    int worker = -1;
    double elapsed_s = 0.0;
  };
  std::vector<RunningShard> in_flight;  // shard-index order
  std::vector<WatchdogAlert> alerts;    // every alert raised so far
  std::vector<WorkerStatus> workers;    // last pool snapshot pushed
  std::vector<ProcessStatus> processes;  // isolate mode: per-slot processes
  // Artifact-cache counters (campaigns with a cache enabled; all zero
  // otherwise). Hits show up live, so a warm run's status stream makes
  // "nothing is being recomputed" visible while in flight.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_corrupt = 0;
};

class StatusBoard {
 public:
  // `now` returns monotonic wall seconds; injectable so tests can drive
  // the watchdog/ETA math deterministically. nullptr = steady_clock.
  explicit StatusBoard(std::function<double()> now = nullptr);

  // Declares the shard list (index-addressed from then on) and the worker
  // count, and starts the run clock. Resets any previous state.
  void begin(const std::vector<std::string>& shards, std::size_t jobs);

  // Heartbeats from the engine. started() is idempotent per attempt — a
  // retried shard restarts its clock. attempt_failed() parks the shard
  // back in pending (its wall never pollutes the ETA median) until the
  // pool re-runs it or the engine records the terminal outcome.
  void shard_started(std::size_t index, int worker);
  void shard_attempt_failed(std::size_t index);

  enum class Outcome : std::uint8_t { kDone, kQuarantined, kFailed };
  void shard_finished(std::size_t index, Outcome outcome);

  // Artifact-cache heartbeat: one call per cache consult (hit, miss, or
  // corrupt-and-recomputed), folded into the status stream.
  enum class CacheEvent : std::uint8_t { kHit, kMiss, kCorrupt };
  void cache_event(CacheEvent event);

  // Latest pool counters for the status stream (monitor thread pushes
  // these each rewrite so the JSON carries per-worker retry/timeout data).
  void set_workers(std::vector<WorkerStatus> workers);

  // Latest per-worker-process snapshot (isolate mode; the supervisor
  // pushes one entry per slot each status tick).
  void set_processes(std::vector<ProcessStatus> processes);

  // Records an externally raised watchdog alert (the shard supervisor
  // detects stalls with its own clock — escalation needs it — but the
  // alert still belongs in this board's status stream).
  void add_alert(WatchdogAlert alert);

  // Runs one watchdog pass; returns only the alerts newly raised by this
  // scan (each shard alerts at most once per attempt).
  std::vector<WatchdogAlert> watchdog_scan(double multiple,
                                           std::size_t min_completed);

  [[nodiscard]] StatusSnapshot snapshot() const;
  [[nodiscard]] std::vector<WatchdogAlert> alerts() const;

 private:
  enum class State : std::uint8_t { kPending, kRunning, kDone,
                                    kQuarantined, kFailed };
  struct Slot {
    std::string name;
    State state = State::kPending;
    int worker = -1;
    double start_s = 0.0;
    bool alerted = false;  // watchdog: one alert per attempt
  };

  [[nodiscard]] double now() const { return now_(); }
  [[nodiscard]] double median_completed_locked() const;

  std::function<double()> now_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::vector<double> completed_walls_;  // successful shards only
  std::vector<WatchdogAlert> alerts_;
  std::vector<WorkerStatus> workers_;
  std::vector<ProcessStatus> processes_;
  std::size_t jobs_ = 0;
  double begin_s_ = 0.0;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
  std::size_t cache_corrupt_ = 0;
};

// Status-file JSON (one object; stable key order) for --status-file.
[[nodiscard]] std::string render_status_json(const StatusSnapshot& snapshot);

// Atomically replaces `path` with `content` (write "<path>.tmp", rename).
// Returns false on I/O failure — the monitor treats that as non-fatal.
bool write_file_atomic(const std::string& path, const std::string& content);

}  // namespace vpna::obs

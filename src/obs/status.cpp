#include "obs/status.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/export.h"
#include "util/strings.h"

namespace vpna::obs {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StatusBoard::StatusBoard(std::function<double()> now)
    : now_(now ? std::move(now) : std::function<double()>(&steady_seconds)) {}

void StatusBoard::begin(const std::vector<std::string>& shards,
                        std::size_t jobs) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  slots_.reserve(shards.size());
  for (const auto& name : shards) {
    Slot slot;
    slot.name = name;
    slots_.push_back(std::move(slot));
  }
  completed_walls_.clear();
  alerts_.clear();
  workers_.clear();
  jobs_ = jobs;
  begin_s_ = now();
  cache_hits_ = 0;
  cache_misses_ = 0;
  cache_corrupt_ = 0;
}

void StatusBoard::cache_event(CacheEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (event) {
    case CacheEvent::kHit: ++cache_hits_; break;
    case CacheEvent::kMiss: ++cache_misses_; break;
    case CacheEvent::kCorrupt: ++cache_corrupt_; break;
  }
}

void StatusBoard::shard_started(std::size_t index, int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= slots_.size()) return;
  Slot& slot = slots_[index];
  slot.state = State::kRunning;
  slot.worker = worker;
  slot.start_s = now();
  slot.alerted = false;  // a fresh attempt gets a fresh watchdog budget
}

void StatusBoard::shard_attempt_failed(std::size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= slots_.size()) return;
  Slot& slot = slots_[index];
  if (slot.state == State::kRunning) slot.state = State::kPending;
}

void StatusBoard::shard_finished(std::size_t index, Outcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= slots_.size()) return;
  Slot& slot = slots_[index];
  // Only a successful run's wall feeds the ETA/watchdog median; failed and
  // quarantined shards would skew it with retry/timeout artefacts.
  if (outcome == Outcome::kDone && slot.state == State::kRunning)
    completed_walls_.push_back(now() - slot.start_s);
  switch (outcome) {
    case Outcome::kDone: slot.state = State::kDone; break;
    case Outcome::kQuarantined: slot.state = State::kQuarantined; break;
    case Outcome::kFailed: slot.state = State::kFailed; break;
  }
}

void StatusBoard::set_workers(std::vector<WorkerStatus> workers) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_ = std::move(workers);
}

void StatusBoard::set_processes(std::vector<ProcessStatus> processes) {
  std::lock_guard<std::mutex> lock(mu_);
  processes_ = std::move(processes);
}

void StatusBoard::add_alert(WatchdogAlert alert) {
  std::lock_guard<std::mutex> lock(mu_);
  alerts_.push_back(std::move(alert));
}

double StatusBoard::median_completed_locked() const {
  if (completed_walls_.empty()) return 0.0;
  std::vector<double> walls = completed_walls_;
  const auto mid = walls.begin() + static_cast<std::ptrdiff_t>(walls.size() / 2);
  std::nth_element(walls.begin(), mid, walls.end());
  if (walls.size() % 2 == 1) return *mid;
  const double hi = *mid;
  const double lo = *std::max_element(walls.begin(), mid);
  return (lo + hi) / 2.0;
}

std::vector<WatchdogAlert> StatusBoard::watchdog_scan(
    double multiple, std::size_t min_completed) {
  std::vector<WatchdogAlert> fresh;
  if (multiple <= 0.0) return fresh;
  std::lock_guard<std::mutex> lock(mu_);
  if (completed_walls_.size() < std::max<std::size_t>(min_completed, 1))
    return fresh;
  const double median = median_completed_locked();
  if (median <= 0.0) return fresh;
  const double t = now();
  for (Slot& slot : slots_) {
    if (slot.state != State::kRunning || slot.alerted) continue;
    const double elapsed = t - slot.start_s;
    if (elapsed <= multiple * median) continue;
    slot.alerted = true;
    WatchdogAlert alert;
    alert.shard = slot.name;
    alert.worker = slot.worker;
    alert.elapsed_s = elapsed;
    alert.median_s = median;
    alerts_.push_back(alert);
    fresh.push_back(std::move(alert));
  }
  return fresh;
}

StatusSnapshot StatusBoard::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatusSnapshot snap;
  snap.total = slots_.size();
  const double t = now();
  snap.elapsed_s = t - begin_s_;
  snap.jobs = jobs_;
  for (const auto& slot : slots_) {
    switch (slot.state) {
      case State::kPending: break;
      case State::kRunning: {
        ++snap.running;
        StatusSnapshot::RunningShard running;
        running.shard = slot.name;
        running.worker = slot.worker;
        running.elapsed_s = t - slot.start_s;
        snap.in_flight.push_back(std::move(running));
        break;
      }
      case State::kDone: ++snap.done; break;
      case State::kQuarantined: ++snap.quarantined; break;
      case State::kFailed: ++snap.failed; break;
    }
  }
  snap.completed = snap.done + snap.quarantined + snap.failed;
  snap.percent = snap.total == 0
                     ? 100.0
                     : 100.0 * static_cast<double>(snap.completed) /
                           static_cast<double>(snap.total);
  snap.median_shard_s = median_completed_locked();
  if (snap.median_shard_s > 0.0 && snap.total >= snap.completed) {
    const auto remaining =
        static_cast<double>(snap.total - snap.completed);
    const auto lanes = static_cast<double>(std::max<std::size_t>(jobs_, 1));
    snap.eta_s = remaining * snap.median_shard_s / lanes;
  }
  snap.alerts = alerts_;
  snap.workers = workers_;
  snap.processes = processes_;
  snap.cache_hits = cache_hits_;
  snap.cache_misses = cache_misses_;
  snap.cache_corrupt = cache_corrupt_;
  return snap;
}

std::vector<WatchdogAlert> StatusBoard::alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_;
}

std::string render_status_json(const StatusSnapshot& snap) {
  std::string out = "{\n";
  out += util::format("  \"total\": %zu,\n", snap.total);
  out += util::format("  \"completed\": %zu,\n", snap.completed);
  out += util::format("  \"done\": %zu,\n", snap.done);
  out += util::format("  \"quarantined\": %zu,\n", snap.quarantined);
  out += util::format("  \"failed\": %zu,\n", snap.failed);
  out += util::format("  \"running\": %zu,\n", snap.running);
  out += util::format("  \"percent\": %.1f,\n", snap.percent);
  out += util::format("  \"elapsed_s\": %.3f,\n", snap.elapsed_s);
  out += util::format("  \"median_shard_s\": %.3f,\n", snap.median_shard_s);
  out += util::format("  \"eta_s\": %.3f,\n", snap.eta_s);
  out += util::format("  \"jobs\": %zu,\n", snap.jobs);
  out += util::format(
      "  \"cache\": {\"hits\": %zu, \"misses\": %zu, \"corrupt\": %zu},\n",
      snap.cache_hits, snap.cache_misses, snap.cache_corrupt);
  out += "  \"in_flight\": [";
  for (std::size_t i = 0; i < snap.in_flight.size(); ++i) {
    const auto& shard = snap.in_flight[i];
    out += i == 0 ? "\n" : ",\n";
    out += util::format(
        "    {\"shard\": \"%s\", \"worker\": %d, \"elapsed_s\": %.3f}",
        json_escape(shard.shard).c_str(), shard.worker, shard.elapsed_s);
  }
  out += snap.in_flight.empty() ? "],\n" : "\n  ],\n";
  out += "  \"watchdog\": [";
  for (std::size_t i = 0; i < snap.alerts.size(); ++i) {
    const auto& alert = snap.alerts[i];
    out += i == 0 ? "\n" : ",\n";
    out += util::format(
        "    {\"shard\": \"%s\", \"worker\": %d, \"elapsed_s\": %.3f, "
        "\"median_s\": %.3f, \"ratio\": %.2f}",
        json_escape(alert.shard).c_str(), alert.worker, alert.elapsed_s,
        alert.median_s, alert.ratio());
  }
  out += snap.alerts.empty() ? "],\n" : "\n  ],\n";
  out += "  \"workers\": [";
  for (std::size_t i = 0; i < snap.workers.size(); ++i) {
    const auto& w = snap.workers[i];
    out += i == 0 ? "\n" : ",\n";
    out += util::format(
        "    {\"worker\": %zu, \"tasks_run\": %llu, \"steals\": %llu, "
        "\"retries\": %llu, \"timeouts\": %llu, \"busy_wall_s\": %.3f}",
        i, static_cast<unsigned long long>(w.tasks_run),
        static_cast<unsigned long long>(w.steals),
        static_cast<unsigned long long>(w.retries),
        static_cast<unsigned long long>(w.timeouts), w.busy_wall_s);
  }
  out += snap.workers.empty() ? "],\n" : "\n  ],\n";
  out += "  \"processes\": [";
  for (std::size_t i = 0; i < snap.processes.size(); ++i) {
    const auto& p = snap.processes[i];
    out += i == 0 ? "\n" : ",\n";
    out += util::format(
        "    {\"slot\": %d, \"pid\": %ld, \"alive\": %s, \"spawns\": %zu, "
        "\"shards_done\": %zu, \"crashes\": %zu, \"shard\": \"%s\"}",
        p.slot, p.pid, p.alive ? "true" : "false", p.spawns, p.shards_done,
        p.crashes, json_escape(p.shard).c_str());
  }
  out += snap.processes.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace vpna::obs

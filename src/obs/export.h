// Trace/metrics exporters.
//
// A campaign's observation is a vector of ShardTrace (one per shard, in
// canonical catalog order). Exports canonicalize event interleaving by
// stable-sorting all events on sim timestamp — ties resolve to (shard,
// sequence) order via sort stability — so two runs of the same seed export
// byte-identical bytes at any worker count.
//
// Chrome trace output is the trace-event JSON format: load it in
// chrome://tracing or https://ui.perfetto.dev. Each shard renders as one
// "thread" (tid = catalog position), which shows every shard's sim-time
// lane side by side regardless of which OS thread actually ran it.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vpna::obs {

// Everything observed while one shard ran: its trace events and its
// deterministic metrics.
struct ShardTrace {
  std::string shard;  // provider / shard label
  std::vector<TraceEvent> events;
  MetricsRegistry metrics;
};

// Chrome trace-event JSON ({"traceEvents": [...]}). ts/dur are virtual
// microseconds; wall durations (when captured) ride along in args.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<ShardTrace>& shards);

// One JSON object per line per event — grep/jq-friendly log form.
[[nodiscard]] std::string trace_jsonl(const std::vector<ShardTrace>& shards);

// Merges every shard's metrics (canonical order) into one registry.
[[nodiscard]] MetricsRegistry merged_metrics(
    const std::vector<ShardTrace>& shards);

// JSON string escaping for exporters and bench emitters.
[[nodiscard]] std::string json_escape(std::string_view raw);

}  // namespace vpna::obs

// Campaign metrics: named counters, gauges and fixed-bucket histograms with
// a deterministic text rendering.
//
// A MetricsRegistry is owned by whoever observes a unit of deterministic
// work (one campaign shard, one test) and is merged in canonical order
// afterwards, so the aggregated registry is byte-identical at any worker
// count. Metrics that describe *scheduling* rather than the simulation
// (pool steals, wall clock) are marked volatile; the text rendering pushes
// them below a marker line so the deterministic prefix can be compared
// byte-for-byte between runs (the canonical form).
//
// Instrumentation sites use the free helpers (obs::count, obs::observe,
// obs::set_gauge), which target the registry bound to the current thread by
// ScopedObservation (see trace.h) and are no-ops — no locks, no
// allocations — when nothing is bound.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vpna::obs {

// Marker separating deterministic metrics from scheduling telemetry in the
// text rendering. Everything above the marker is the canonical form.
inline constexpr std::string_view kVolatileMetricsMarker =
    "# --- scheduling telemetry (varies run to run; excluded from canonical "
    "compare) ---";

// Standard bucket bounds (upper-inclusive; an implicit +inf bucket follows).
inline constexpr double kRttBucketsMs[] = {1,   5,   10,  25,   50,
                                           100, 250, 500, 1000, 2500};
inline constexpr double kHopBuckets[] = {1, 2, 3, 4, 6, 8, 12, 16, 24};
inline constexpr double kSimSecondsBuckets[] = {0.01, 0.05, 0.1, 0.5, 1,
                                                5,    20,   60,  180, 600};
// Finer low end than kRttBucketsMs: queueing delay on an uncongested path
// sits well under a millisecond and the percentile queries need resolution
// there.
inline constexpr double kQueueDelayBucketsMs[] = {
    0.25, 0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000};

struct HistogramData {
  std::vector<double> bounds;          // upper bounds, ascending
  std::vector<std::uint64_t> counts;   // bounds.size() + 1 (last = +inf)
  std::uint64_t total = 0;
  double sum = 0.0;
};

// Standalone observation into a HistogramData owned by a result struct
// (rather than a registry): fixes the buckets on first use, then counts.
void histogram_observe(HistogramData& h, double value,
                       std::span<const double> bounds);

// Bucket-interpolated quantile (q in [0,1], clamped): finds the bucket
// holding the q·total-th observation and interpolates linearly inside it,
// Prometheus histogram_quantile-style. The first bucket's lower edge is
// min(0, bound) — every metric here is non-negative, so effectively 0 —
// and a quantile landing in the +inf bucket reports the last finite bound
// (the best the bucketing can say). Returns 0 for an empty histogram.
// Accurate to within the width of the containing bucket; the randomized
// test pins it against util::stats::quantile on the raw samples.
[[nodiscard]] double histogram_quantile(const HistogramData& h, double q);

class MetricsRegistry {
 public:
  // Counter increment (creates the counter at 0 on first use).
  void add(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  // Histogram observation; `bounds` fixes the buckets on first use and must
  // match on every later call for the same name.
  void observe(std::string_view name, double value,
               std::span<const double> bounds);

  // Marks a metric as scheduling telemetry (see kVolatileMetricsMarker).
  void set_volatile(std::string_view name);

  // Folds `other` in: counters and histogram buckets add, gauges keep the
  // maximum (so a merged gauge reads "worst shard"), volatile marks union.
  void merge(const MetricsRegistry& other);

  // Deterministic dump: one line per metric, sorted by kind then name.
  // Volatile metrics render after the marker; `include_volatile = false`
  // yields the canonical form used for byte-identity comparisons.
  [[nodiscard]] std::string render_text(bool include_volatile = true) const;

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  // Sum of every counter whose name starts with `prefix` (e.g. "faults."
  // for fault attribution snapshots). Deterministic: map order is fixed.
  [[nodiscard]] std::uint64_t counter_prefix_sum(std::string_view prefix) const;
  [[nodiscard]] std::optional<double> gauge(std::string_view name) const;
  [[nodiscard]] const HistogramData* histogram(std::string_view name) const;
  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, HistogramData, std::less<>> histograms_;
  std::set<std::string, std::less<>> volatile_;
};

namespace detail {
// The thread-bound registry. Exposed (as a detail) so the no-meter checks
// below inline into the per-packet hot path; use meter()/ScopedObservation.
extern thread_local MetricsRegistry* t_meter;

// Swaps the thread-bound registry, returning the previous one. Used by
// ScopedObservation (trace.h); not part of the instrumentation API.
MetricsRegistry* exchange_meter(MetricsRegistry* next) noexcept;
}  // namespace detail

// The registry bound to this thread by ScopedObservation, or nullptr.
[[nodiscard]] inline MetricsRegistry* meter() noexcept {
  return detail::t_meter;
}

// Free helpers targeting the bound registry; no-ops when none is bound.
inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (auto* m = detail::t_meter) m->add(name, delta);
}
inline void observe(std::string_view name, double value,
                    std::span<const double> bounds) {
  if (auto* m = detail::t_meter) m->observe(name, value, bounds);
}
inline void set_gauge(std::string_view name, double value) {
  if (auto* m = detail::t_meter) m->set_gauge(name, value);
}

}  // namespace vpna::obs

#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "util/strings.h"

namespace vpna::obs {

namespace detail {
std::atomic<bool> g_profiler_enabled{false};
}  // namespace detail

namespace {

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One open phase on a thread's frame stack. `path` is the full stack path
// built at push time ("shard.run;test.pings") so close never re-walks the
// stack; `child_ns` accumulates closed children for self-time attribution.
struct Frame {
  std::string name;
  std::string path;
  std::int64_t start_ns = 0;
  std::int64_t child_ns = 0;
};

// Per-thread accumulation. The frame stack is touched only by the owning
// thread; the two tables are shared with report()/reset() and guarded by
// `mu` (taken once per scope close — short and uncontended in practice).
struct ThreadProfile {
  std::vector<Frame> stack;
  mutable std::mutex mu;
  std::map<std::string, PhaseStats, std::less<>> phases;
  std::map<std::string, PhaseStats, std::less<>> paths;
};

thread_local ThreadProfile* t_profile = nullptr;

// The registry keeps thread tables alive after their threads exit, so a
// campaign report can be folded after the TaskPool is destroyed.
struct Registry {
  mutable std::mutex mu;
  std::vector<std::unique_ptr<ThreadProfile>> threads;

  static Registry& instance() {
    static Registry* reg = new Registry;  // leaked: usable during exit
    return *reg;
  }

  ThreadProfile* adopt() {
    auto tp = std::make_unique<ThreadProfile>();
    ThreadProfile* raw = tp.get();
    std::lock_guard<std::mutex> lock(mu);
    threads.push_back(std::move(tp));
    return raw;
  }
};

}  // namespace

namespace detail {

void push_frame(std::string_view name) {
  if (t_profile == nullptr) t_profile = Registry::instance().adopt();
  Frame frame;
  frame.name.assign(name);
  frame.path = t_profile->stack.empty()
                   ? frame.name
                   : t_profile->stack.back().path + ";" + frame.name;
  frame.start_ns = wall_now_ns();
  t_profile->stack.push_back(std::move(frame));
}

void pop_frame() noexcept {
  ThreadProfile* tp = t_profile;
  if (tp == nullptr || tp->stack.empty()) return;  // tolerate mid-run reset
  Frame frame = std::move(tp->stack.back());
  tp->stack.pop_back();
  const std::int64_t total = wall_now_ns() - frame.start_ns;
  const std::int64_t self = total - frame.child_ns;
  if (!tp->stack.empty()) tp->stack.back().child_ns += total;
  std::lock_guard<std::mutex> lock(tp->mu);
  PhaseStats& phase = tp->phases[frame.name];
  phase.calls += 1;
  phase.total_ns += total;
  phase.self_ns += self;
  PhaseStats& path = tp->paths[frame.path];
  path.calls += 1;
  path.total_ns += total;
  path.self_ns += self;
}

}  // namespace detail

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::reset() {
  auto& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& tp : reg.threads) {
    std::lock_guard<std::mutex> tlock(tp->mu);
    tp->phases.clear();
    tp->paths.clear();
  }
}

ProfileReport Profiler::report(std::size_t flame_top_n) const {
  std::map<std::string, PhaseStats, std::less<>> phases;
  std::map<std::string, PhaseStats, std::less<>> paths;
  std::size_t active_threads = 0;
  {
    auto& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& tp : reg.threads) {
      std::lock_guard<std::mutex> tlock(tp->mu);
      if (tp->phases.empty()) continue;
      ++active_threads;
      for (const auto& [name, stats] : tp->phases) phases[name].fold(stats);
      for (const auto& [path, stats] : tp->paths) paths[path].fold(stats);
    }
  }

  // Hot-phase ordering: self time descending, name ascending on ties —
  // deterministic given the data, so two reports over identical timings
  // render identically.
  ProfileReport report;
  report.threads = active_threads;
  report.phases.reserve(phases.size());
  for (auto& [name, stats] : phases)
    report.phases.push_back(ProfileReport::Phase{name, stats});
  std::sort(report.phases.begin(), report.phases.end(),
            [](const ProfileReport::Phase& a, const ProfileReport::Phase& b) {
              if (a.stats.self_ns != b.stats.self_ns)
                return a.stats.self_ns > b.stats.self_ns;
              return a.name < b.name;
            });
  report.flame.reserve(paths.size());
  for (auto& [path, stats] : paths)
    report.flame.push_back(ProfileReport::PathRow{path, stats});
  std::sort(report.flame.begin(), report.flame.end(),
            [](const ProfileReport::PathRow& a, const ProfileReport::PathRow& b) {
              if (a.stats.self_ns != b.stats.self_ns)
                return a.stats.self_ns > b.stats.self_ns;
              return a.path < b.path;
            });
  if (report.flame.size() > flame_top_n) report.flame.resize(flame_top_n);
  return report;
}

std::string render_profile_text(const ProfileReport& report) {
  std::string out =
      "# wall-clock profile (telemetry; varies run to run; never part of "
      "the canonical payload)\n";
  out += util::format("# threads=%zu\n", report.threads);
  const auto ms = [](std::int64_t ns) {
    return static_cast<double>(ns) / 1e6;
  };
  for (const auto& phase : report.phases) {
    out += util::format(
        "phase %s calls=%llu total_ms=%.3f self_ms=%.3f\n", phase.name.c_str(),
        static_cast<unsigned long long>(phase.stats.calls),
        ms(phase.stats.total_ns), ms(phase.stats.self_ns));
  }
  if (!report.flame.empty()) out += "# flame (top self-time stack paths)\n";
  for (const auto& row : report.flame) {
    out += util::format(
        "path %s calls=%llu total_ms=%.3f self_ms=%.3f\n", row.path.c_str(),
        static_cast<unsigned long long>(row.stats.calls), ms(row.stats.total_ns),
        ms(row.stats.self_ns));
  }
  return out;
}

}  // namespace vpna::obs

// Sim-time-aware structured tracing.
//
// A TraceRecorder collects spans (RAII, nested) and point events,
// timestamped in virtual microseconds from the util::SimClock it is bound
// to, with an optional wall-clock dimension for real performance work.
//
// Determinism contract: a recorder is owned by exactly one unit of
// deterministic work (a campaign shard) and is only ever touched by the
// thread currently running that unit — there are no locks, no atomics and
// no cross-thread sharing, so tracing cannot perturb TaskPool scheduling,
// and trace *content* depends only on the simulation, never on worker
// count. Interleaving across shards is canonicalized at export time by
// (sim_ts, shard, sequence) — see export.h.
//
// Instrumentation sites construct `obs::Span`/`obs::Instant` objects, which
// resolve the recorder bound to the current thread by ScopedObservation.
// When nothing is bound (the default), construction is a thread-local read
// plus a branch: no allocation, no work — the netsim per-packet hot path
// stays fast.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"

namespace vpna::obs {

struct TraceConfig {
  bool enabled = false;
  // Emit a per-router-hop instant for every packet walked through netsim.
  // Off by default: hop instants multiply the event volume by the mean path
  // length and are only worth it when debugging routing/middlebox behaviour.
  bool packet_hops = false;
  // Record wall-clock durations alongside sim time. Wall times vary run to
  // run, so canonical exports omit them unless this is set — enabling it
  // intentionally trades byte-identity for real timing data.
  bool capture_wall = false;
};

struct TraceArg {
  std::string key;
  std::string value;
};

struct TraceEvent {
  std::uint32_t id = 0;      // 1-based within the recorder, in begin order
  std::uint32_t parent = 0;  // enclosing open span (0 = root)
  std::uint32_t depth = 0;   // nesting depth at begin
  char phase = 'X';          // 'X' complete span, 'i' instant
  std::string name;
  std::string category;
  std::int64_t sim_ts_us = 0;
  std::int64_t sim_dur_us = 0;  // instants: 0; open spans: -1 until ended
  double wall_dur_ms = -1.0;    // only when TraceConfig::capture_wall
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});

  // Timestamps come from `clock` (virtual µs); a recorder with no clock
  // stamps everything at 0. Bind before the first span.
  void bind_clock(const util::SimClock* clock) noexcept { clock_ = clock; }

  [[nodiscard]] const TraceConfig& config() const noexcept { return config_; }

  // Low-level API (Span/Instant are the intended interface).
  std::uint32_t begin_span(std::string_view name, std::string_view category);
  void end_span(std::uint32_t id);
  std::uint32_t add_instant(std::string_view name, std::string_view category);
  void add_arg(std::uint32_t id, std::string_view key, std::string_view value);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::vector<TraceEvent> take_events() {
    return std::move(events_);
  }
  [[nodiscard]] std::size_t open_spans() const noexcept {
    return stack_.size();
  }

 private:
  TraceConfig config_;
  const util::SimClock* clock_ = nullptr;
  std::vector<TraceEvent> events_;
  std::vector<std::uint32_t> stack_;       // open span ids
  std::vector<double> wall_starts_;        // parallel to stack_ (capture_wall)
};

namespace detail {
// The thread-bound recorder. Exposed (as a detail) so the no-tracer checks
// below inline into the per-packet hot path; use tracer()/ScopedObservation.
extern thread_local TraceRecorder* t_tracer;
}  // namespace detail

// The recorder bound to this thread by ScopedObservation, or nullptr.
[[nodiscard]] inline TraceRecorder* tracer() noexcept {
  return detail::t_tracer;
}
[[nodiscard]] inline bool tracing() noexcept {
  return detail::t_tracer != nullptr;
}
// True when per-packet hop instants were requested (implies tracing()).
[[nodiscard]] inline bool packet_hops_enabled() noexcept {
  return detail::t_tracer != nullptr &&
         detail::t_tracer->config().packet_hops;
}

// Binds a recorder and a metrics registry to the current thread for the
// scope's lifetime, restoring the previous binding on destruction. Either
// pointer may be null (trace-only or metrics-only observation).
class ScopedObservation {
 public:
  ScopedObservation(TraceRecorder* recorder, MetricsRegistry* metrics);
  ~ScopedObservation();

  ScopedObservation(const ScopedObservation&) = delete;
  ScopedObservation& operator=(const ScopedObservation&) = delete;

 private:
  TraceRecorder* prev_tracer_;
  MetricsRegistry* prev_meter_;
};

// RAII span against the thread-bound recorder; a no-op shell when nothing
// is bound. Ends at destruction (or explicitly via end()).
class Span {
 public:
  Span() = default;
  Span(std::string_view name, std::string_view category);
  Span(Span&& o) noexcept : rec_(o.rec_), id_(o.id_) { o.rec_ = nullptr; }
  Span& operator=(Span&& o) noexcept;
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, std::int64_t value);
  void arg(std::string_view key, double value);
  void end();

  [[nodiscard]] explicit operator bool() const noexcept {
    return rec_ != nullptr;
  }

 private:
  TraceRecorder* rec_ = nullptr;
  std::uint32_t id_ = 0;
};

// Point event against the thread-bound recorder; same no-op contract.
class Instant {
 public:
  Instant(std::string_view name, std::string_view category);

  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, std::int64_t value);

  [[nodiscard]] explicit operator bool() const noexcept {
    return rec_ != nullptr;
  }

 private:
  TraceRecorder* rec_ = nullptr;
  std::uint32_t id_ = 0;
};

}  // namespace vpna::obs

// Wall-clock phase profiler — the real-time counterpart of the sim-time
// trace layer (trace.h).
//
// A ProfileScope marks one phase of real work (shard build, routing-plane
// freeze, one suite, merge, serialization). Scopes nest on a thread-local
// frame stack; closing a scope attributes its wall time to the phase both
// inclusively (total) and exclusively (self = total minus enclosed
// phases), and to the full stack path for a flame-style summary. Every
// thread accumulates into its own tables; Profiler::report() folds the
// per-thread tables into one deterministic-ordered hot-phase report
// (self-time descending, name ascending on ties).
//
// Cost contract: when the profiler is disabled (the default), constructing
// a ProfileScope is one relaxed atomic load and a branch — no clock read,
// no allocation, no lock — so instrumentation sites can stay in place
// permanently (bench_obs pins both paths). When enabled, a scope costs two
// steady_clock reads plus one short uncontended lock at close.
//
// Determinism quarantine: wall times legitimately vary run to run, so
// nothing the profiler produces ever lands in a campaign payload — the
// report is a separate artifact (full_campaign --profile), exactly like
// the volatile-marker section of the metrics rendering.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vpna::obs {

// Accumulated wall time of one phase (or one stack path).
struct PhaseStats {
  std::uint64_t calls = 0;
  std::int64_t total_ns = 0;  // inclusive of enclosed phases
  std::int64_t self_ns = 0;   // exclusive

  void fold(const PhaseStats& o) noexcept {
    calls += o.calls;
    total_ns += o.total_ns;
    self_ns += o.self_ns;
  }
};

// The folded cross-thread profile.
struct ProfileReport {
  struct Phase {
    std::string name;
    PhaseStats stats;
  };
  // One row per distinct frame-stack path ("shard.run;test.pings"),
  // self-time ordered — a textual flame graph.
  struct PathRow {
    std::string path;
    PhaseStats stats;
  };
  std::vector<Phase> phases;  // self-time desc, name asc on ties
  std::vector<PathRow> flame; // top-N paths, same ordering
  std::size_t threads = 0;    // threads that recorded at least one frame
};

namespace detail {
// Thread-local frame push/pop behind the enabled() fast path; not part of
// the instrumentation API (use ProfileScope).
void push_frame(std::string_view name);
void pop_frame() noexcept;
extern std::atomic<bool> g_profiler_enabled;
}  // namespace detail

// Process-wide profiler registry. Threads register lazily on their first
// enabled ProfileScope; their tables survive thread exit so a report can
// be taken after a TaskPool has been torn down.
class Profiler {
 public:
  static Profiler& instance();

  // Enabling mid-run is safe: scopes opened while disabled stay inert for
  // their whole lifetime (and vice versa), so frames always balance.
  static void enable() noexcept {
    detail::g_profiler_enabled.store(true, std::memory_order_relaxed);
  }
  static void disable() noexcept {
    detail::g_profiler_enabled.store(false, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() noexcept {
    return detail::g_profiler_enabled.load(std::memory_order_relaxed);
  }

  // Clears every thread's accumulated tables (open frames keep running and
  // will accumulate on close). For benches and tests.
  void reset();

  // Folds every thread's tables. `flame_top_n` bounds the path summary;
  // the per-phase table is always complete.
  [[nodiscard]] ProfileReport report(std::size_t flame_top_n = 12) const;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

 private:
  Profiler() = default;
  friend void detail::push_frame(std::string_view);
  struct Impl;
};

// Text rendering of a report ("phase <name> calls=N total_ms=… self_ms=…"
// plus the flame section). Telemetry by nature: never byte-compared.
[[nodiscard]] std::string render_profile_text(const ProfileReport& report);

// RAII phase marker. Inert (and near-free) while the profiler is disabled.
class ProfileScope {
 public:
  explicit ProfileScope(std::string_view name) {
    if (Profiler::enabled()) {
      active_ = true;
      detail::push_frame(name);
    }
  }
  ~ProfileScope() {
    if (active_) detail::pop_frame();
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  bool active_ = false;
};

}  // namespace vpna::obs

#include "http/url.h"

#include <array>
#include <charconv>

#include "util/strings.h"

namespace vpna::http {

namespace {

// Minimal public-suffix list covering the TLDs the simulated web uses.
constexpr std::array<std::string_view, 22> kSuffixes = {
    "co.uk", "org.uk", "ac.uk", "com.au", "net.au", "com.br", "com.cn",
    "co.jp", "co.kr", "com.tr", "com",    "org",    "net",    "ru",
    "de",    "fr",     "nl",    "io",     "me",     "kr",     "uk",
    "guide",
};

}  // namespace

std::string Url::str() const {
  std::string s = scheme + "://" + host;
  if (port != 0) s += ":" + std::to_string(port);
  s += path.empty() ? "/" : path;
  return s;
}

std::optional<Url> Url::parse(std::string_view text) {
  Url u;
  std::size_t scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos) return std::nullopt;
  u.scheme = util::to_lower(text.substr(0, scheme_end));
  if (u.scheme != "http" && u.scheme != "https") return std::nullopt;
  std::string_view rest = text.substr(scheme_end + 3);
  if (rest.empty()) return std::nullopt;

  const std::size_t path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  u.path = path_start == std::string_view::npos
               ? "/"
               : std::string(rest.substr(path_start));

  // Split host[:port]; IPv6 literals are not used by the simulated web.
  const std::size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    const auto port_text = authority.substr(colon + 1);
    unsigned port = 0;
    auto [p, ec] =
        std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || p != port_text.data() + port_text.size() ||
        port == 0 || port > 0xffff)
      return std::nullopt;
    u.port = static_cast<std::uint16_t>(port);
    authority = authority.substr(0, colon);
  }
  if (authority.empty()) return std::nullopt;
  u.host = util::to_lower(authority);
  return u;
}

Url Url::resolve(std::string_view location) const {
  if (const auto abs = Url::parse(location)) return *abs;
  Url u = *this;
  if (!location.empty() && location.front() == '/')
    u.path = std::string(location);
  return u;
}

std::string public_suffix(std::string_view host) {
  for (const auto suffix : kSuffixes) {
    if (host == suffix) return std::string(suffix);
    if (host.size() > suffix.size() && util::ends_with(host, suffix) &&
        host[host.size() - suffix.size() - 1] == '.')
      return std::string(suffix);
  }
  return {};
}

std::string registered_domain(std::string_view host) {
  const std::string suffix = public_suffix(host);
  if (suffix.empty() || host == suffix) return std::string(host);
  // The label immediately left of the suffix, plus the suffix.
  const std::string_view without =
      host.substr(0, host.size() - suffix.size() - 1);
  const std::size_t last_dot = without.rfind('.');
  const std::string_view label =
      last_dot == std::string_view::npos ? without : without.substr(last_dot + 1);
  return std::string(label) + "." + suffix;
}

bool domains_related(std::string_view host_a, std::string_view host_b) {
  const std::string ra = registered_domain(host_a);
  const std::string rb = registered_domain(host_b);
  if (ra == rb) return true;
  // Same registrable label, different public suffix?
  const std::string sa = public_suffix(ra);
  const std::string sb = public_suffix(rb);
  if (sa.empty() || sb.empty()) return false;
  const std::string_view la(ra.data(), ra.size() - sa.size());
  const std::string_view lb(rb.data(), rb.size() - sb.size());
  return !la.empty() && la == lb;
}

}  // namespace vpna::http

#include "http/message.h"

#include <charconv>

#include "util/strings.h"

namespace vpna::http {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  return util::to_lower(a) == util::to_lower(b);
}

// Splits "Name: value" lines until the blank line; returns false on framing
// errors. `lines_consumed` points just past the blank separator.
bool parse_headers(const std::vector<std::string>& lines, std::size_t start,
                   std::vector<Header>& headers, std::size_t& body_start) {
  for (std::size_t i = start; i < lines.size(); ++i) {
    if (lines[i].empty()) {
      body_start = i + 1;
      return true;
    }
    const std::size_t colon = lines[i].find(':');
    if (colon == std::string::npos) return false;
    std::string name = lines[i].substr(0, colon);
    std::string value = lines[i].substr(colon + 1);
    // Strip exactly one leading space if present (preserving any other
    // spacing quirks, which the proxy-detection test depends on).
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    headers.emplace_back(std::move(name), std::move(value));
  }
  return false;  // no blank separator
}

std::string join_body(const std::vector<std::string>& lines,
                      std::size_t body_start) {
  std::string body;
  for (std::size_t i = body_start; i < lines.size(); ++i) {
    if (i > body_start) body += '\n';
    body += lines[i];
  }
  return body;
}

}  // namespace

std::string_view reason_for_status(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 303: return "See Other";
    case 307: return "Temporary Redirect";
    case 308: return "Permanent Redirect";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 451: return "Unavailable For Legal Reasons";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    default: return "Unknown";
  }
}

std::optional<std::string> HttpRequest::header(std::string_view name) const {
  for (const auto& [n, v] : headers)
    if (iequals(n, name)) return v;
  return std::nullopt;
}

void HttpRequest::set_header(std::string_view name, std::string_view value) {
  for (auto& [n, v] : headers) {
    if (iequals(n, name)) {
      v = std::string(value);
      return;
    }
  }
  headers.emplace_back(std::string(name), std::string(value));
}

std::string HttpRequest::encode() const {
  std::string s = method + " " + path + " HTTP/1.1\n";
  s += "Host: " + host + "\n";
  for (const auto& [n, v] : headers) s += n + ": " + v + "\n";
  s += "\n";
  s += body;
  return s;
}

std::optional<HttpRequest> HttpRequest::decode(std::string_view payload) {
  const auto lines = util::split(payload, '\n');
  if (lines.empty()) return std::nullopt;
  const auto req_parts = util::split(lines[0], ' ');
  if (req_parts.size() != 3 || req_parts[2] != "HTTP/1.1") return std::nullopt;
  HttpRequest r;
  r.method = req_parts[0];
  r.path = req_parts[1];

  std::vector<Header> all;
  std::size_t body_start = 0;
  if (!parse_headers(lines, 1, all, body_start)) return std::nullopt;
  for (auto& h : all) {
    if (iequals(h.first, "Host") && r.host.empty())
      r.host = h.second;
    else
      r.headers.push_back(std::move(h));
  }
  if (r.host.empty()) return std::nullopt;
  r.body = join_body(lines, body_start);
  return r;
}

std::optional<std::string> HttpResponse::header(std::string_view name) const {
  for (const auto& [n, v] : headers)
    if (iequals(n, name)) return v;
  return std::nullopt;
}

void HttpResponse::set_header(std::string_view name, std::string_view value) {
  for (auto& [n, v] : headers) {
    if (iequals(n, name)) {
      v = std::string(value);
      return;
    }
  }
  headers.emplace_back(std::string(name), std::string(value));
}

std::string HttpResponse::encode() const {
  std::string s = "HTTP/1.1 " + std::to_string(status) + " " + reason + "\n";
  for (const auto& [n, v] : headers) s += n + ": " + v + "\n";
  s += "\n";
  s += body;
  return s;
}

std::optional<HttpResponse> HttpResponse::decode(std::string_view payload) {
  const auto lines = util::split(payload, '\n');
  if (lines.empty() || !util::starts_with(lines[0], "HTTP/1.1 "))
    return std::nullopt;
  HttpResponse r;
  const auto status_line = util::split(lines[0], ' ');
  if (status_line.size() < 2) return std::nullopt;
  int status = 0;
  const auto& st = status_line[1];
  auto [p, ec] = std::from_chars(st.data(), st.data() + st.size(), status);
  if (ec != std::errc{} || p != st.data() + st.size()) return std::nullopt;
  r.status = status;
  r.reason = status_line.size() > 2
                 ? util::join({status_line.begin() + 2, status_line.end()}, " ")
                 : std::string(reason_for_status(status));

  std::size_t body_start = 0;
  if (!parse_headers(lines, 1, r.headers, body_start)) return std::nullopt;
  r.body = join_body(lines, body_start);
  return r;
}

}  // namespace vpna::http

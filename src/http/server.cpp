#include "http/server.h"

#include "util/strings.h"

namespace vpna::http {

bool Site::blocks(const netsim::IpAddr& client) const {
  for (const auto& range : blocked_ranges)
    if (range.contains(client)) return true;
  return false;
}

void WebServerService::add_site(std::shared_ptr<Site> site) {
  sites_[site->hostname] = std::move(site);
}

std::shared_ptr<Site> WebServerService::find_site(
    std::string_view hostname) const {
  const auto it = sites_.find(hostname);
  return it == sites_.end() ? nullptr : it->second;
}

std::optional<std::string> WebServerService::handle(
    netsim::ServiceContext& ctx) {
  const auto req = HttpRequest::decode(ctx.request.payload);
  if (!req) {
    HttpResponse bad;
    bad.status = 400;
    bad.reason = "Bad Request";
    return bad.encode();
  }

  HttpResponse resp;
  const auto site = find_site(req->host);
  if (site == nullptr) {
    resp.status = 404;
    resp.reason = "Not Found";
    resp.body = "<html><body>no such site</body></html>";
    return resp.encode();
  }

  // VPN-range discrimination happens before anything else: the site keys on
  // the client address it sees (the VPN egress, not the true client).
  if (site->blocks(ctx.request.src)) {
    if (site->blocks_with_empty_200) {
      resp.status = 200;
      resp.reason = "OK";
      resp.body = "";
    } else {
      resp.status = 403;
      resp.reason = "Forbidden";
      resp.body = "<html><body>Access denied</body></html>";
    }
    resp.set_header("Server", "edge-gw");
    return resp.encode();
  }

  // Scheme upgrade redirect.
  if (!https_ && site->upgrades_to_https && site->https_available) {
    resp.status = 301;
    resp.reason = "Moved Permanently";
    resp.set_header("Location", "https://" + site->hostname + req->path);
    return resp.encode();
  }

  const auto page_it = site->pages.find(req->path);
  if (page_it == site->pages.end()) {
    resp.status = 404;
    resp.reason = "Not Found";
    resp.body = "<html><body>not found</body></html>";
    return resp.encode();
  }

  resp.status = 200;
  resp.reason = "OK";
  resp.set_header("Content-Type", "text/html");
  resp.set_header("Server", "httpd/1.4");
  resp.body = page_it->second.html;
  return resp.encode();
}

std::optional<std::string> HeaderEchoService::handle(
    netsim::ServiceContext& ctx) {
  const auto req = HttpRequest::decode(ctx.request.payload);
  HttpResponse resp;
  if (!req) {
    resp.status = 400;
    resp.reason = "Bad Request";
    return resp.encode();
  }
  resp.status = 200;
  resp.reason = "OK";
  resp.set_header("Content-Type", "text/plain");
  // The body is the byte-exact request as received; any in-path parse-and-
  // regenerate proxy shows up as a diff against what the client sent.
  resp.body = ctx.request.payload;
  return resp.encode();
}

Page make_basic_page(std::string_view hostname, std::string_view title,
                     int resource_count) {
  Page p;
  p.html = util::format(
      "<html><head><title>%.*s</title></head><body>"
      "<h1>%.*s</h1><p>content served by %.*s</p>",
      static_cast<int>(title.size()), title.data(),
      static_cast<int>(title.size()), title.data(),
      static_cast<int>(hostname.size()), hostname.data());
  for (int i = 0; i < resource_count; ++i) {
    const std::string url = util::format("http://%.*s/static/res%d.js",
                                         static_cast<int>(hostname.size()),
                                         hostname.data(), i);
    p.html += util::format("<script src=\"%s\"></script>", url.c_str());
    p.resources.push_back(url);
  }
  p.html += "</body></html>";
  return p;
}

Page make_honeysite_page(std::string_view hostname, bool with_ad_slot) {
  Page p;
  p.html = util::format(
      "<html><head><title>honeysite</title></head><body>"
      "<div id=\"static-content\">unchanging reference text</div>");
  if (with_ad_slot) {
    // Invalid publisher id so no real ad system would ever fill the slot.
    const std::string ad_url =
        "http://ads.adnet-one.com/serve.js?pub=invalid-0000";
    p.html += util::format(
        "<div class=\"ad-slot\"><script src=\"%s\"></script></div>",
        ad_url.c_str());
    p.resources.push_back(ad_url);
  }
  p.html += util::format("<footer>hosted at %.*s</footer></body></html>",
                         static_cast<int>(hostname.size()), hostname.data());
  return p;
}

}  // namespace vpna::http

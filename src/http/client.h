// Browser-style HTTP client: resolves names through the host's configured
// DNS, opens (simulated) TCP/TLS connections, follows redirect chains, and
// records a structured log of every request/response pair — the raw
// material for the DOM-collection, redirect-classification and
// TLS-downgrade tests.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "http/message.h"
#include "http/url.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "transport/error.h"
#include "transport/flow.h"

namespace vpna::http {

struct FetchOptions {
  int max_redirects = 8;
  // Extra headers attached to every request (the measurement suite sends a
  // distinctive, stable header set so proxy rewrites are observable).
  std::vector<Header> headers;
  // Override the resolver (nullopt = host's system DNS configuration).
  std::optional<netsim::IpAddr> resolver;
  // Transport policy. Defaults (single attempt, first address only) keep
  // the wire traffic identical to the pre-transport client.
  transport::RetryPolicy retry;
  bool address_fallback = false;
};

// One request/response exchange within a fetch.
struct ExchangeRecord {
  Url url;
  std::string request_serialized;   // exact bytes sent
  int status = 0;
  std::vector<Header> response_headers;
  std::string body;
  netsim::IpAddr server_addr;       // address actually contacted
  // Every address the lookup offered, in resolver order (the analysis
  // layer correlates these against egress observations even though only
  // the front is contacted unless address_fallback is on).
  std::vector<netsim::IpAddr> candidate_addrs;
  double rtt_ms = 0.0;
};

struct FetchResult {
  // not-attempted until the client actually sent something; a fetch whose
  // URL never parsed stays distinguishable from a routing failure.
  transport::Error error;
  Url final_url;
  int status = 0;
  std::string body;
  std::vector<ExchangeRecord> exchanges;  // full redirect chain

  [[nodiscard]] bool ok() const noexcept {
    return error.ok() && status >= 200 && status < 400;
  }
};

// A full page load: the document plus every sub-resource it references.
struct PageLoadResult {
  FetchResult document;
  std::vector<FetchResult> resources;
  // The set of URLs requested during the load, in order — the "request log"
  // the paper's Selenium harness captures.
  std::vector<std::string> requested_urls;

  // The final DOM: document body after all loads (sub-resource fetches do
  // not rewrite the DOM in the simulator unless an in-path entity injected
  // content into the document itself).
  [[nodiscard]] const std::string& dom() const noexcept {
    return document.body;
  }
};

class HttpClient {
 public:
  HttpClient(netsim::Network& net, netsim::Host& host)
      : net_(net), host_(host) {}

  // GET with redirect following.
  FetchResult fetch(const Url& url, const FetchOptions& opts = {});
  FetchResult fetch(std::string_view url_text, const FetchOptions& opts = {});

  // Loads a page and its sub-resources (browser emulation).
  PageLoadResult load_page(std::string_view url_text,
                           const FetchOptions& opts = {});

 private:
  // One exchange without redirect handling.
  std::optional<ExchangeRecord> exchange(const Url& url,
                                         const FetchOptions& opts,
                                         transport::Error& error);

  netsim::Network& net_;
  netsim::Host& host_;
};

}  // namespace vpna::http

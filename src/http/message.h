// HTTP/1.1 message model with a line-based wire encoding. Header *identity*
// (exact names, casing, order and spacing) is preserved through
// serialization, because the header-based transparent-proxy detection test
// (§6.2.1) works by comparing the bytes a client sent against the bytes a
// reflection server received.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vpna::http {

using Header = std::pair<std::string, std::string>;

struct HttpRequest {
  std::string method = "GET";
  std::string host;           // Host header target
  std::string path = "/";
  std::vector<Header> headers;  // excluding Host (kept separately)
  std::string body;

  // Finds the first header with the given name (case-insensitive).
  [[nodiscard]] std::optional<std::string> header(std::string_view name) const;
  void set_header(std::string_view name, std::string_view value);

  // Exact serialized form ("GET /path HTTP/1.1\r\nHost: ...\r\n...").
  [[nodiscard]] std::string encode() const;
  static std::optional<HttpRequest> decode(std::string_view payload);
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<Header> headers;
  std::string body;

  [[nodiscard]] std::optional<std::string> header(std::string_view name) const;
  void set_header(std::string_view name, std::string_view value);

  [[nodiscard]] bool is_redirect() const noexcept {
    return status == 301 || status == 302 || status == 303 || status == 307 ||
           status == 308;
  }

  [[nodiscard]] std::string encode() const;
  static std::optional<HttpResponse> decode(std::string_view payload);
};

[[nodiscard]] std::string_view reason_for_status(int status) noexcept;

}  // namespace vpna::http

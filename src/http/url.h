// URL handling and the public-suffix-based "related domain" test the paper
// uses to classify HTTP redirects (§6.1.1): two hosts are related when they
// share a registered domain, or their registered domains differ only by
// public suffix.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vpna::http {

struct Url {
  std::string scheme;  // "http" or "https"
  std::string host;    // lowercase hostname or IP literal
  std::uint16_t port = 0;  // 0 = scheme default
  std::string path;    // begins with '/'

  [[nodiscard]] std::uint16_t effective_port() const noexcept {
    if (port != 0) return port;
    return scheme == "https" ? 443 : 80;
  }

  [[nodiscard]] std::string str() const;

  // Parses absolute http(s) URLs: scheme://host[:port][/path].
  static std::optional<Url> parse(std::string_view text);

  // Resolves a Location header value against this URL (absolute URLs pass
  // through; paths replace this URL's path).
  [[nodiscard]] Url resolve(std::string_view location) const;

  friend bool operator==(const Url&, const Url&) = default;
};

// The registrable domain of a hostname under a small built-in public-suffix
// list ("a.b.example.com" -> "example.com", "x.example.co.uk" ->
// "example.co.uk"). Returns the input unchanged for IPs and single labels.
[[nodiscard]] std::string registered_domain(std::string_view host);

// The public suffix itself ("com", "co.uk", ...) or "" if none matched.
[[nodiscard]] std::string public_suffix(std::string_view host);

// The paper's relatedness rule: same registered domain, or registered
// domains differing only by public suffix (example.com vs example.org).
[[nodiscard]] bool domains_related(std::string_view host_a,
                                   std::string_view host_b);

}  // namespace vpna::http

#include "http/client.h"

#include "dns/client.h"
#include "obs/trace.h"

namespace vpna::http {

std::optional<ExchangeRecord> HttpClient::exchange(const Url& url,
                                                   const FetchOptions& opts,
                                                   transport::Error& error) {
  // Resolve the hostname (IP literals pass through). The full candidate
  // list is kept: the record carries it for the analysis layer, and the
  // flow walks it when address fallback is enabled.
  std::vector<netsim::IpAddr> candidates;
  if (const auto literal = netsim::IpAddr::parse(url.host)) {
    candidates = {*literal};
  } else {
    dns::LookupResult lookup =
        opts.resolver
            ? dns::query(net_, host_, *opts.resolver, url.host, dns::RrType::kA,
                         opts.retry)
            : dns::resolve_system(net_, host_, url.host, dns::RrType::kA,
                                  opts.retry);
    if (!lookup.ok() || lookup.addresses.empty()) {
      error = transport::Error::resolve(lookup.error);
      return std::nullopt;
    }
    candidates = lookup.addresses;
  }

  HttpRequest req;
  req.method = "GET";
  req.host = url.host;
  req.path = url.path;
  req.headers = opts.headers;
  if (req.headers.empty()) {
    // Stable, distinctive default header set (ordering matters: in-path
    // proxies that parse and regenerate requests disturb it).
    req.headers = {
        {"User-Agent", "vpna-probe/1.0 (Macintosh; like Gecko)"},
        {"Accept", "text/html,application/xhtml+xml;q=0.9,*/*;q=0.8"},
        {"Accept-Language", "en-US,en;q=0.5"},
        {"X-Probe-Marker", "leave-intact-7719"},
    };
  }
  // Encode once: the same bytes go on the wire and into the record.
  std::string request_bytes = req.encode();

  transport::FlowOptions fopts;
  // TCP handshake = 1 extra RTT; TLS adds 2 more.
  fopts.extra_round_trips = url.scheme == "https" ? 3 : 1;
  fopts.retry = opts.retry;
  fopts.address_fallback = opts.address_fallback;
  transport::Flow flow(net_, host_, netsim::Proto::kTcp, candidates,
                       url.effective_port(), fopts);
  const auto result = flow.exchange(request_bytes);
  if (!result.ok()) {
    error = result.error;
    return std::nullopt;
  }
  const auto resp = HttpResponse::decode(result.reply);
  if (!resp) {
    error = transport::Error::parse();
    return std::nullopt;
  }

  ExchangeRecord rec;
  rec.url = url;
  rec.request_serialized = std::move(request_bytes);
  rec.status = resp->status;
  rec.response_headers = resp->headers;
  rec.body = resp->body;
  rec.server_addr = result.remote;
  rec.candidate_addrs = std::move(candidates);
  rec.rtt_ms = result.rtt_ms;
  return rec;
}

FetchResult HttpClient::fetch(const Url& url, const FetchOptions& opts) {
  obs::Span span("http.fetch", "http");
  if (span) span.arg("url", url.str());
  obs::count("http.fetches");
  const auto finish = [&span](FetchResult& r) -> FetchResult& {
    if (!r.error.ok()) obs::count("http.fetch_errors");
    if (!r.exchanges.empty())
      obs::count("http.exchanges", r.exchanges.size());
    if (span) {
      span.arg("status", static_cast<std::int64_t>(r.status));
      span.arg("error", transport::error_name(r.error));
      span.arg("redirects",
               static_cast<std::int64_t>(
                   r.exchanges.empty() ? 0 : r.exchanges.size() - 1));
    }
    return r;
  };

  FetchResult out;
  Url current = url;
  for (int hop = 0; hop <= opts.max_redirects; ++hop) {
    transport::Error error = transport::Error::not_attempted();
    auto rec = exchange(current, opts, error);
    if (!rec) {
      out.error = error;
      out.final_url = current;
      return finish(out);
    }
    out.exchanges.push_back(*rec);
    const HttpResponse resp = [&] {
      HttpResponse r;
      r.status = rec->status;
      r.headers = rec->response_headers;
      r.body = rec->body;
      return r;
    }();
    if (resp.is_redirect()) {
      const auto location = resp.header("Location");
      if (!location) {
        out.error = transport::Error::parse();
        out.final_url = current;
        return finish(out);
      }
      current = current.resolve(*location);
      continue;
    }
    out.error = transport::Error::none();
    out.final_url = current;
    out.status = rec->status;
    out.body = rec->body;
    return finish(out);
  }
  out.error = transport::Error::redirect_limit();
  out.final_url = current;
  return finish(out);
}

FetchResult HttpClient::fetch(std::string_view url_text,
                              const FetchOptions& opts) {
  const auto url = Url::parse(url_text);
  if (!url) {
    // Nothing was sent: an unparseable URL is a parse failure on a flow
    // that never got attempted at the transport level.
    FetchResult out;
    out.error = transport::Error::parse();
    return out;
  }
  return fetch(*url, opts);
}

PageLoadResult HttpClient::load_page(std::string_view url_text,
                                     const FetchOptions& opts) {
  obs::Span span("http.page_load", "http");
  if (span) span.arg("url", url_text);
  obs::count("http.page_loads");

  PageLoadResult out;
  out.requested_urls.emplace_back(url_text);
  out.document = fetch(url_text, opts);
  if (!out.document.ok()) return out;

  // Extract script src references from the final DOM and fetch each. This
  // includes any scripts an in-path party injected, mirroring how a real
  // browser would dutifully load injected content.
  const std::string& dom = out.document.body;
  std::size_t pos = 0;
  while ((pos = dom.find("src=\"", pos)) != std::string::npos) {
    pos += 5;
    const std::size_t end = dom.find('"', pos);
    if (end == std::string::npos) break;
    const std::string res_url = dom.substr(pos, end - pos);
    pos = end;
    if (!res_url.starts_with("http")) continue;
    out.requested_urls.push_back(res_url);
    out.resources.push_back(fetch(res_url, opts));
  }
  if (span)
    span.arg("resources", static_cast<std::int64_t>(out.resources.size()));
  return out;
}

}  // namespace vpna::http

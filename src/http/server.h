// The simulated web: sites with pages and sub-resources, served by a
// WebServerService bound on ports 80/443 of a datacenter host. Sites can
// upgrade HTTP to HTTPS, block requests arriving from known-VPN address
// ranges (the behaviour behind the paper's §6.1.2 403 findings), and act as
// honeysites (static, injection-friendly DOM with ad-slot markers).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "http/message.h"
#include "netsim/host.h"
#include "netsim/network.h"

namespace vpna::http {

struct Page {
  std::string html;
  // Absolute URLs of sub-resources the page references (scripts, images,
  // ad slots). A browser-style loader fetches each of these.
  std::vector<std::string> resources;
};

struct Site {
  std::string hostname;
  std::map<std::string, Page> pages;  // path -> page
  bool https_available = true;
  // Redirect http:// requests to https:// (301).
  bool upgrades_to_https = false;
  // Address ranges this site refuses to serve (HTTP 403) — how streaming
  // and similar services discriminate against known VPN egress blocks.
  std::vector<netsim::Cidr> blocked_ranges;
  // When true the site answers blocked clients with 200 and an empty body
  // instead of 403 (the paper saw both variants).
  bool blocks_with_empty_200 = false;

  [[nodiscard]] bool blocks(const netsim::IpAddr& client) const;
};

// Serves one or more sites on a host. The same service instance is bound on
// port 80 and port 443; `https` distinguishes the scheme semantics.
class WebServerService final : public netsim::Service {
 public:
  explicit WebServerService(bool https) : https_(https) {}

  void add_site(std::shared_ptr<Site> site);
  [[nodiscard]] std::shared_ptr<Site> find_site(std::string_view hostname) const;

  std::optional<std::string> handle(netsim::ServiceContext& ctx) override;

 private:
  bool https_;
  std::map<std::string, std::shared_ptr<Site>, std::less<>> sites_;
};

// A reflection endpoint: answers any request with a body containing the
// exact serialized request it received. The proxy-detection test compares
// this against what the client sent.
class HeaderEchoService final : public netsim::Service {
 public:
  std::optional<std::string> handle(netsim::ServiceContext& ctx) override;
};

// Convenience: builds the standard page set for a simulated site (a root
// page with a handful of same-origin sub-resources).
[[nodiscard]] Page make_basic_page(std::string_view hostname,
                                   std::string_view title, int resource_count);

// Builds a honeysite page: static DOM with an ad-slot script include, using
// deliberately invalid publisher identifiers (per the paper's methodology).
[[nodiscard]] Page make_honeysite_page(std::string_view hostname,
                                       bool with_ad_slot);

}  // namespace vpna::http

#include "transport/flow.h"

#include <utility>

#include "obs/metrics.h"
#include "transport/policy.h"

namespace vpna::transport {

double RetryPolicy::backoff_before_attempt(int attempt) const noexcept {
  if (attempt <= 1 || initial_backoff_ms <= 0) return 0.0;
  double wait = initial_backoff_ms;
  for (int i = 2; i < attempt; ++i) wait *= backoff_multiplier;
  return wait;
}

Flow::Flow(netsim::Network& net, netsim::Host& host, netsim::Proto proto,
           const netsim::IpAddr& remote, std::uint16_t remote_port,
           FlowOptions opts)
    : net_(net),
      host_(host),
      proto_(proto),
      primary_(remote),
      remote_(remote),
      remote_port_(remote_port),
      opts_(opts),
      span_("transport.flow", "transport") {
  // Flows constructed with default retry/fallback adopt the thread-bound
  // session policy (installed per shard under fault profiles); explicit
  // per-call settings always win, and non-policy options are untouched.
  if (const auto* policy = session_policy();
      policy != nullptr && opts_.retry.max_attempts <= 1 &&
      !opts_.address_fallback) {
    opts_.retry = policy->retry;
    opts_.address_fallback = policy->address_fallback;
  }
  obs::count("transport.flows");
  if (span_) {
    span_.arg("proto", netsim::proto_name(proto_));
    span_.arg("remote", remote_.str());
    span_.arg("port", static_cast<std::int64_t>(remote_port_));
  }
}

Flow::Flow(netsim::Network& net, netsim::Host& host, netsim::Proto proto,
           std::vector<netsim::IpAddr> candidates, std::uint16_t remote_port,
           FlowOptions opts)
    : Flow(net, host, proto,
           candidates.empty() ? netsim::IpAddr{} : candidates.front(),
           remote_port, opts) {
  empty_ = candidates.empty();
  if (!empty_) {
    fallbacks_ = std::move(candidates);
    fallbacks_.erase(fallbacks_.begin());  // primary lives inline
  }
}

Flow::~Flow() {
  if (span_) {
    span_.arg("exchanges", static_cast<std::int64_t>(exchanges_));
    span_.arg("attempts", static_cast<std::int64_t>(attempts_));
    span_.arg("rtt_ms", total_rtt_ms_);
    span_.arg("error", error_name(last_error_));
  }
}

FlowResult Flow::exchange(std::string payload) {
  FlowResult out;
  ++exchanges_;
  obs::count("transport.exchanges");
  if (empty_) {
    // Nothing to contact: an explicit not-attempted outcome, deliberately
    // distinct from kNoRoute (the plane was never asked).
    last_error_ = out.error = Error::not_attempted();
    return out;
  }

  netsim::TransactOptions topts;
  topts.timeout_ms = opts_.timeout_ms;
  topts.extra_round_trips = opts_.extra_round_trips;
  const std::size_t n_candidates =
      opts_.address_fallback ? candidate_count() : 1;
  // Single-shot flows (the migrated defaults) move the payload straight
  // into the packet; only retry/fallback configurations need to keep a
  // reusable copy.
  const bool single_shot =
      opts_.retry.max_attempts <= 1 && n_candidates == 1;

  for (int attempt = 1; attempt <= opts_.retry.max_attempts; ++attempt) {
    // Backoff between attempts is simulation time, not wall time: charge
    // the wait to the clock (and this flow's RTT budget) deterministically.
    const double backoff_ms = opts_.retry.backoff_before_attempt(attempt);
    if (backoff_ms > 0) {
      net_.clock().advance_millis(backoff_ms);
      out.rtt_ms += backoff_ms;
    }
    if (attempt > 1) obs::count("transport.retries");

    for (std::size_t ci = 0; ci < n_candidates; ++ci) {
      if (ci > 0) obs::count("transport.fallback_switches");
      remote_ = candidate(ci);

      netsim::Packet p;
      p.src = src_;
      p.dst = remote_;
      p.proto = proto_;
      p.dst_port = remote_port_;
      if (pinned_src_port_) {
        p.src_port = *pinned_src_port_;
      } else if (proto_ == netsim::Proto::kUdp ||
                 proto_ == netsim::Proto::kTcp) {
        p.src_port = host_.next_ephemeral_port();
      }
      if (ttl_ >= 0) p.ttl = ttl_;
      p.payload = single_shot ? std::move(payload) : payload;

      auto result = net_.transact(host_, std::move(p), topts);
      ++attempts_;
      ++out.attempts;
      out.rtt_ms += result.rtt_ms;
      out.status = result.status;
      out.responder = result.responder;
      out.remote = remote_;
      out.via_tunnel = result.via_tunnel;
      if (result.ok()) {
        out.reply = std::move(result.reply);
        last_error_ = out.error = Error::none();
        total_rtt_ms_ += out.rtt_ms;
        obs::observe("transport.rtt_ms", out.rtt_ms, obs::kRttBucketsMs);
        return out;
      }
    }
  }

  last_error_ = out.error = Error::from_status(out.status);
  total_rtt_ms_ += out.rtt_ms;
  obs::count("transport.failures");
  obs::observe("transport.rtt_ms", out.rtt_ms, obs::kRttBucketsMs);
  return out;
}

}  // namespace vpna::transport

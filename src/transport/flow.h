// The session layer between protocol clients and the packet plane.
//
// Every protocol in the measurement suite used to hand-roll the same
// pipeline — allocate an ephemeral port, build a packet, call
// `Network::transact`, map the status, accumulate RTT — with its own error
// enum and no shared seam for retries, fault injection or per-flow
// accounting. A `Flow` owns that pipeline for one (proto, remote, port)
// conversation: it allocates source ports, charges retry backoff in
// virtual time, walks multi-address candidate lists (happy-eyeballs-lite),
// accumulates per-flow RTT/attempt counters, and reports failures in the
// unified `transport::Error` taxonomy. With the default options (one
// attempt, no fallback) a Flow exchange is byte-identical to the raw
// transact it replaced: same port draws, same packets, same virtual time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "obs/trace.h"
#include "transport/error.h"

namespace vpna::transport {

// Deterministic retry schedule, charged entirely in virtual time. The
// defaults (one attempt, no backoff) make retrying a no-op, keeping
// existing payloads and sim-time accounting byte-identical.
struct RetryPolicy {
  int max_attempts = 1;           // total tries; 1 = no retries
  double initial_backoff_ms = 0;  // virtual-time wait before the 2nd try
  double backoff_multiplier = 2.0;

  // Backoff charged before `attempt` (1-based; attempt 1 waits nothing).
  [[nodiscard]] double backoff_before_attempt(int attempt) const noexcept;
};

struct FlowOptions {
  // Virtual time charged when an attempt fails to complete.
  double timeout_ms = 1000.0;
  // Extra RTTs charged per attempt (TCP/TLS handshake accounting).
  int extra_round_trips = 0;
  RetryPolicy retry;
  // Try every candidate address in order within an attempt (the behaviour
  // real stub resolvers and browsers exhibit). Off: only the first
  // candidate is ever contacted, matching the pre-transport clients.
  bool address_fallback = false;
};

// Outcome of one `Flow::exchange`.
struct FlowResult {
  Error error;  // not_attempted() until something was sent
  // Raw transport status of the last attempt (kOk even when the reply later
  // fails protocol parsing; servers switch on this for TTL handling).
  // Meaningful only when error.attempted() — `error.kind` is authoritative.
  netsim::TransactStatus status = netsim::TransactStatus::kOk;
  std::string reply;          // reply payload when delivered
  netsim::IpAddr responder;   // who answered (router for kTtlExpired)
  netsim::IpAddr remote;      // candidate address actually contacted
  double rtt_ms = 0.0;        // virtual time consumed, backoff included
  int attempts = 0;           // transactions performed
  bool via_tunnel = false;    // left the sender through a tun interface

  [[nodiscard]] bool ok() const noexcept { return error.ok(); }
};

class Flow {
 public:
  // Single-destination flow.
  Flow(netsim::Network& net, netsim::Host& host, netsim::Proto proto,
       const netsim::IpAddr& remote, std::uint16_t remote_port,
       FlowOptions opts = {});
  // Multi-address flow: `candidates` in resolver order. With
  // `opts.address_fallback` each attempt walks the list until one address
  // answers at the transport level; without it only the front is used.
  Flow(netsim::Network& net, netsim::Host& host, netsim::Proto proto,
       std::vector<netsim::IpAddr> candidates, std::uint16_t remote_port,
       FlowOptions opts = {});

  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;
  ~Flow();

  // NAT/egress override: stamp this source address on every packet.
  void set_src(const netsim::IpAddr& src) noexcept { src_ = src; }
  // Pin the source port (a NAT slot allocated up front). Unpinned flows
  // draw a fresh ephemeral port per attempt for UDP/TCP and send ICMP
  // unported, exactly like the clients they replaced.
  void pin_src_port(std::uint16_t port) noexcept { pinned_src_port_ = port; }
  void set_ttl(int ttl) noexcept { ttl_ = ttl; }

  // One request/reply exchange under the flow's retry/fallback policy.
  FlowResult exchange(std::string payload);

  // --- per-flow accounting ---------------------------------------------------
  // Candidate addresses in resolver order (0 = primary).
  [[nodiscard]] std::size_t candidate_count() const noexcept {
    return empty_ ? 0 : 1 + fallbacks_.size();
  }
  [[nodiscard]] const netsim::IpAddr& candidate(std::size_t i) const noexcept {
    return i == 0 ? primary_ : fallbacks_[i - 1];
  }
  [[nodiscard]] const netsim::IpAddr& remote() const noexcept {
    return remote_;
  }
  [[nodiscard]] std::uint16_t remote_port() const noexcept {
    return remote_port_;
  }
  [[nodiscard]] double total_rtt_ms() const noexcept { return total_rtt_ms_; }
  [[nodiscard]] int attempts() const noexcept { return attempts_; }
  [[nodiscard]] int exchanges() const noexcept { return exchanges_; }
  [[nodiscard]] const Error& last_error() const noexcept { return last_error_; }

 private:
  netsim::Network& net_;
  netsim::Host& host_;
  netsim::Proto proto_;
  // Split so the common single-address flow never touches the heap: the
  // first candidate lives inline, only extras (rare) go in the vector.
  netsim::IpAddr primary_;
  std::vector<netsim::IpAddr> fallbacks_;
  bool empty_ = false;  // constructed with an empty candidate list
  netsim::IpAddr remote_;  // address of the last transaction (primary until then)
  std::uint16_t remote_port_;
  FlowOptions opts_;
  netsim::IpAddr src_;  // unspecified = let the stack choose
  std::optional<std::uint16_t> pinned_src_port_;
  int ttl_ = -1;  // -1 = packet default

  double total_rtt_ms_ = 0.0;
  int attempts_ = 0;
  int exchanges_ = 0;
  Error last_error_ = Error::not_attempted();

  obs::Span span_;  // per-flow span; finalized with accounting args in dtor
};

}  // namespace vpna::transport

#include "transport/policy.h"

namespace vpna::transport {

namespace {
thread_local const SessionPolicy* t_policy = nullptr;
}  // namespace

const SessionPolicy* session_policy() noexcept { return t_policy; }

ScopedSessionPolicy::ScopedSessionPolicy(const SessionPolicy* policy) noexcept
    : prev_(t_policy) {
  t_policy = policy;
}

ScopedSessionPolicy::~ScopedSessionPolicy() { t_policy = prev_; }

}  // namespace vpna::transport

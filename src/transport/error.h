// Unified flow-level error taxonomy for every protocol client.
//
// Before the transport layer existed, dns, http and tlssim each grew a
// private, partially-overlapping failure enum (`LookupResult::transport`,
// `FetchError`, `HandshakeResult::transport`), all of which abused
// `TransactStatus::kNoRoute` as a zero-value "never tried" default — so a
// flow that was never attempted was indistinguishable from one the packet
// plane refused to route. `transport::Error` replaces all three: one kind
// axis saying *where* the flow died, plus the carried detail (the
// underlying `netsim::TransactStatus`, or a protocol code such as the DNS
// rcode) saying *why*.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "netsim/network.h"

namespace vpna::transport {

enum class ErrorKind : std::uint8_t {
  kNone,           // flow completed: delivered, parsed, peer said yes
  kNotAttempted,   // nothing was ever sent (explicitly distinct from a
                   // routing failure; the old enums conflated the two)
  kResolve,        // name resolution failed before any connect was tried
  kTransport,      // the packet plane failed; `status` carries the reason
  kParse,          // a reply arrived but could not be decoded
  kUpstream,       // delivered and parsed, but the peer reported failure
                   // (`code` carries the protocol detail, e.g. DNS rcode)
  kRedirectLimit,  // the protocol gave up following redirects
};

// Stable name for a kind; exhaustive switch (built -Werror=switch).
[[nodiscard]] std::string_view error_kind_name(ErrorKind k) noexcept;

struct Error {
  ErrorKind kind = ErrorKind::kNotAttempted;
  // Transport status of the last attempt. Meaningful once the flow was
  // attempted; kOk for failures that happened above the packet plane.
  netsim::TransactStatus status = netsim::TransactStatus::kOk;
  // Protocol detail for kUpstream/kResolve (DNS rcode, ...); 0 otherwise.
  std::uint16_t code = 0;

  [[nodiscard]] constexpr bool ok() const noexcept {
    return kind == ErrorKind::kNone;
  }
  [[nodiscard]] constexpr bool attempted() const noexcept {
    return kind != ErrorKind::kNotAttempted;
  }
  // True when the peer's answer came back intact — the flow either
  // succeeded or failed at the application layer (e.g. NXDOMAIN), as
  // opposed to dying in transit or arriving garbled. Stub resolvers use
  // this to decide whether asking the next server could help.
  [[nodiscard]] constexpr bool answered() const noexcept {
    return kind == ErrorKind::kNone || kind == ErrorKind::kUpstream;
  }

  // --- constructors for each failure site ---------------------------------
  [[nodiscard]] static constexpr Error none() noexcept {
    return Error{ErrorKind::kNone, netsim::TransactStatus::kOk, 0};
  }
  [[nodiscard]] static constexpr Error not_attempted() noexcept {
    return Error{};
  }
  // Maps a transact status: kOk -> none(), anything else -> kTransport
  // carrying the status. The single choke point every client routes
  // through (unit-tested against every TransactStatus value).
  [[nodiscard]] static Error from_status(netsim::TransactStatus s) noexcept;
  [[nodiscard]] static constexpr Error parse(
      netsim::TransactStatus last = netsim::TransactStatus::kOk) noexcept {
    return Error{ErrorKind::kParse, last, 0};
  }
  [[nodiscard]] static constexpr Error upstream(std::uint16_t code) noexcept {
    return Error{ErrorKind::kUpstream, netsim::TransactStatus::kOk, code};
  }
  // A fetch that died resolving its hostname; carries the lookup's own
  // failure detail so "resolver unreachable" and "NXDOMAIN" stay distinct.
  [[nodiscard]] static constexpr Error resolve(const Error& cause) noexcept {
    return Error{ErrorKind::kResolve, cause.status, cause.code};
  }
  [[nodiscard]] static constexpr Error redirect_limit() noexcept {
    return Error{ErrorKind::kRedirectLimit, netsim::TransactStatus::kOk, 0};
  }

  constexpr friend bool operator==(const Error&, const Error&) noexcept =
      default;
};

// Renders the full error, kind plus carried detail, e.g. "none",
// "not-attempted", "transport:no-route", "upstream:code-3",
// "resolve:transport:no-reply". The one name every span/report uses.
[[nodiscard]] std::string error_name(const Error& e);

}  // namespace vpna::transport

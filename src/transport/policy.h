// Thread-bound transport session policy.
//
// PR 4 gave every Flow a RetryPolicy and address fallback, but left both
// default-off so campaign payloads stayed byte-identical — which also left
// them dead code. Under a fault profile the campaign engine wants every
// flow in a shard to retry and fall back, without threading new options
// through every protocol client's signature. A SessionPolicy does for
// flow options what obs::ScopedObservation does for tracing: it is bound
// to the thread running one deterministic unit of work (a campaign shard),
// and any Flow constructed with default retry/fallback options adopts it.
// Explicit per-call retry or fallback settings always win; non-policy
// options (timeout, extra round trips) are never touched.
#pragma once

#include "transport/flow.h"

namespace vpna::transport {

struct SessionPolicy {
  RetryPolicy retry;
  bool address_fallback = false;
};

// The policy bound to this thread, or nullptr (the default: flows behave
// exactly as their explicit options say).
[[nodiscard]] const SessionPolicy* session_policy() noexcept;

// Binds `policy` (may be nullptr) for the scope's lifetime, restoring the
// previous binding on destruction. The pointee must outlive the scope.
class ScopedSessionPolicy {
 public:
  explicit ScopedSessionPolicy(const SessionPolicy* policy) noexcept;
  ~ScopedSessionPolicy();

  ScopedSessionPolicy(const ScopedSessionPolicy&) = delete;
  ScopedSessionPolicy& operator=(const ScopedSessionPolicy&) = delete;

 private:
  const SessionPolicy* prev_;
};

}  // namespace vpna::transport

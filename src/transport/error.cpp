#include "transport/error.h"

#include "util/strings.h"

namespace vpna::transport {

std::string_view error_kind_name(ErrorKind k) noexcept {
  switch (k) {
    case ErrorKind::kNone: return "none";
    case ErrorKind::kNotAttempted: return "not-attempted";
    case ErrorKind::kResolve: return "resolve";
    case ErrorKind::kTransport: return "transport";
    case ErrorKind::kParse: return "parse";
    case ErrorKind::kUpstream: return "upstream";
    case ErrorKind::kRedirectLimit: return "redirect-limit";
  }
  return "?";
}

Error Error::from_status(netsim::TransactStatus s) noexcept {
  if (s == netsim::TransactStatus::kOk) return none();
  return Error{ErrorKind::kTransport, s, 0};
}

std::string error_name(const Error& e) {
  std::string out{error_kind_name(e.kind)};
  // Detail suffixes: the transport status whenever one was recorded for a
  // failure, and the protocol code for upstream-reported errors.
  if (e.status != netsim::TransactStatus::kOk)
    out += ":" + std::string(netsim::status_name(e.status));
  if (e.code != 0) out += util::format(":code-%u", unsigned{e.code});
  return out;
}

}  // namespace vpna::transport

// Congestion-controlled streaming over the capacity-aware traffic plane.
//
// A StreamSpec describes one RTP-like media flow: a sender that clocks
// fixed-size packets out of a source queue under a SCReAM-style,
// ack-clocked congestion window. run_streams() simulates any number of
// such flows *concurrently* on one netsim::EventLoop — packets interleave
// in the per-link FIFO queues (netsim::LinkQueue), compete for link
// bandwidth, pick up ECN marks above the queue threshold and tail-drop
// when a buffer fills — and returns per-flow statistics: goodput, RTT and
// queueing-delay distributions, ECN/drop counts and the congestion
// controller's decrease history.
//
// The controller is deliberately SCReAM-lite (media-rate congestion
// control, not a TCP clone): slow-start doubling to first congestion,
// then additive increase per ack; multiplicative decrease at most once
// per RTT on an ECN echo (beta 0.8) or a detected loss (beta 0.5); lost
// packets are *not* retransmitted — a media stream ships the next frame
// instead — and a stalled window is rescued by an RTO-style reset so
// hostile fault windows cannot wedge a flow forever.
//
// Determinism: the traffic plane draws no randomness at all. Every event
// is a pure function of (topology, capacities, specs, fault plan, virtual
// time) and the EventLoop dispatches ties in schedule order, so a run is
// bit-identical across processes and worker counts.
//
// Fault composition (the drop/ECN double-count audit): the network's
// FaultInjector is consulted exactly once per data packet, at injection
// time, before the packet enters its first link queue. A fault drop is
// counted under faults.* (by the injector) and StreamStats::fault_drops —
// never as a queue tail-drop or an ECN mark, and a fault-dropped packet
// never occupies queue bytes. Conservation therefore holds exactly:
// sent_packets == delivered_packets + queue_drops + fault_drops.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/network.h"
#include "obs/metrics.h"

namespace vpna::transport {

struct StreamConfig {
  // Injection window in virtual seconds; in-flight packets drain after.
  double duration_s = 2.0;
  std::uint32_t packet_bytes = 1200;  // fixed media packet size (MSS)
  // Source media rate; 0 = full-buffer (speed-test mode: the source queue
  // is never empty and the controller probes for the path capacity).
  double source_bitrate_bps = 0.0;
  // Congestion controller knobs.
  std::uint32_t init_cwnd_packets = 2;
  std::uint32_t min_cwnd_packets = 2;
  // Hard window ceiling: bounds event volume even on a lossless,
  // uncapacitated path where nothing ever pushes back on the window.
  std::uint32_t max_cwnd_packets = 1024;
  double ecn_beta = 0.8;   // multiplicative decrease on an ECN echo
  double loss_beta = 0.5;  // multiplicative decrease on detected loss
  // Timeline sampling period for StreamStats::timeline (0 disables).
  double sample_interval_ms = 100.0;
};

// One timeline sample (sim-time relative to flow start).
struct StreamSample {
  double t_ms = 0.0;
  double queue_delay_ms = 0.0;  // most recent per-ack queueing-delay sample
  double cwnd_bytes = 0.0;
};

struct StreamStats {
  bool ran = false;  // false: no route from src to dst (flow skipped)
  std::uint64_t sent_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t queue_drops = 0;   // tail-dropped at a full link buffer
  std::uint64_t fault_drops = 0;   // dropped by the fault injector
  std::uint64_t ecn_marks = 0;     // CE echoes seen by the sender
  std::uint64_t loss_detected = 0; // sequence gaps observed in acks
  int cwnd_decreases = 0;          // multiplicative decreases (ECN+loss+RTO)
  int rto_resets = 0;              // stalled-window rescues
  double base_rtt_ms = 0.0;        // jitter-free analytic path RTT
  double min_rtt_ms = 0.0;
  double max_rtt_ms = 0.0;
  double queue_delay_mean_ms = 0.0;
  double queue_delay_max_ms = 0.0;
  // Per-ack queueing-delay distribution (kQueueDelayBucketsMs buckets);
  // feed obs::histogram_quantile for p50/p90/p99. Sim-time derived, so
  // deterministic like every other stat here.
  obs::HistogramData queue_delay_hist_ms;
  double cwnd_final_bytes = 0.0;
  double duration_s = 0.0;  // the configured injection window
  std::vector<StreamSample> timeline;

  [[nodiscard]] double goodput_mbps() const noexcept {
    return duration_s > 0.0
               ? static_cast<double>(delivered_bytes) * 8.0 / duration_s / 1e6
               : 0.0;
  }
  [[nodiscard]] double loss_rate() const noexcept {
    return sent_packets > 0
               ? static_cast<double>(queue_drops + fault_drops) /
                     static_cast<double>(sent_packets)
               : 0.0;
  }
  [[nodiscard]] double ecn_rate() const noexcept {
    return delivered_packets > 0 ? static_cast<double>(ecn_marks) /
                                       static_cast<double>(delivered_packets)
                                 : 0.0;
  }
};

struct StreamSpec {
  netsim::Host* src = nullptr;
  netsim::IpAddr dst;
  std::uint16_t dst_port = netsim::kPortSpeedTest;
  StreamConfig config;
};

// Simulates every spec concurrently on one event loop over `net`'s link
// capacities, starting at net.clock().now(); on return the network clock
// has advanced to the time the last in-flight packet drained. Stats are
// aligned with `specs`. Uncapacitated links on a path behave as pure
// delay (the pre-capacity fiction); a fully uncapacitated path therefore
// never drops, marks or queues.
[[nodiscard]] std::vector<StreamStats> run_streams(
    netsim::Network& net, const std::vector<StreamSpec>& specs);

}  // namespace vpna::transport

#include "transport/stream.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "netsim/event_loop.h"
#include "netsim/link_queue.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vpna::transport {

namespace {

using netsim::EventLoop;
using netsim::LinkCapacity;
using netsim::LinkQueue;
using netsim::RouterId;
using util::SimTime;

// Event tags: (index << 3) | kind. Packet events carry a pool index, flow
// events a flow index.
enum EventKind : std::uint64_t {
  kArrive = 0,      // packet reaches the entry of its next link
  kTxComplete = 1,  // packet finished serializing onto a link
  kDeliver = 2,     // packet reaches the destination host
  kAck = 3,         // ack reaches the sender
  kMediaTick = 4,   // paced source produced one packet of media
  kRto = 5,         // stalled-window rescue timer
  kSample = 6,      // timeline sampling
};
constexpr std::uint64_t tag_of(std::uint64_t index, EventKind kind) noexcept {
  return (index << 3) | kind;
}

// Rounds a microsecond quantity to the SimTime grid deterministically.
SimTime us_time(double us) noexcept {
  return SimTime(static_cast<std::int64_t>(std::llround(us)));
}
SimTime ms_time(double ms) noexcept { return us_time(ms * 1e3); }

// One direction of a capacitated link: an exclusive transmitter fed by a
// finite FIFO. Directions are independent (full duplex).
struct LinkState {
  LinkQueue queue;
  const LinkCapacity* capacity = nullptr;
  double prop_ms = 0.0;
  bool busy = false;

  explicit LinkState(const LinkCapacity& cap, double prop)
      : queue(cap), capacity(&cap), prop_ms(prop) {}
};

struct FlowState {
  const StreamSpec* spec = nullptr;
  std::size_t index = 0;  // position in the spec vector (and event tags)
  StreamStats stats;
  netsim::Network::ResolvedPath path;
  netsim::Packet probe;     // fault-injector template (one per flow)
  double reverse_delay_ms = 0.0;
  SimTime start;
  SimTime inject_end;

  // SCReAM-lite controller state (bytes).
  double cwnd = 0.0;
  double ssthresh = 1e18;
  double bytes_in_flight = 0.0;
  double srtt_ms = 0.0;
  double last_decrease_ms = -1e18;
  double last_queue_delay_ms = 0.0;
  double queue_delay_sum_ms = 0.0;
  std::uint64_t rtt_samples = 0;
  std::uint32_t next_seq = 0;
  std::uint32_t next_ack_expected = 0;
  SimTime last_progress;
  bool rto_armed = false;
  double media_credit_bytes = 0.0;

  [[nodiscard]] double mss() const noexcept {
    return static_cast<double>(spec->config.packet_bytes);
  }
  [[nodiscard]] bool media_available() const noexcept {
    return spec->config.source_bitrate_bps <= 0.0 ||
           media_credit_bytes >= mss();
  }
  [[nodiscard]] double rto_interval_ms() const noexcept {
    return std::max(4.0 * srtt_ms, 200.0);
  }
};

struct PacketInFlight {
  FlowState* flow = nullptr;
  LinkState* link = nullptr;  // set while serializing on a transmitter
  SimTime sent_at;
  std::uint32_t seq = 0;
  std::uint32_t bytes = 0;
  std::uint32_t hop = 0;  // next link to cross: routers[hop] -> routers[hop+1]
  bool ecn = false;
};

// The whole simulation: owns the loop, the per-directed-link transmitters
// and the packet pool, and dispatches every event kind. Single-threaded
// and RNG-free, so the run is a pure function of its inputs.
class Plane final : public netsim::EventActor {
 public:
  Plane(netsim::Network& net, const std::vector<StreamSpec>& specs)
      : net_(net), loop_(net.clock().now()) {
    flows_.reserve(specs.size());
    for (const auto& spec : specs) {
      auto flow = std::make_unique<FlowState>();
      flow->spec = &spec;
      flow->index = flows_.size();
      auto resolved =
          spec.src != nullptr
              ? net_.resolve_path(*spec.src, spec.dst)
              : std::nullopt;
      if (resolved) {
        flow->stats.ran = true;
        flow->path = std::move(*resolved);
        const double one_way = flow->path.src_access_ms +
                               flow->path.path_latency_ms +
                               flow->path.dst_access_ms;
        flow->reverse_delay_ms = one_way;
        flow->stats.base_rtt_ms = 2.0 * one_way;
        flow->stats.duration_s = spec.config.duration_s;
        flow->probe.dst = spec.dst;
        flow->probe.proto = netsim::Proto::kUdp;
        flow->probe.dst_port = spec.dst_port;
        flow->probe.src_port = spec.src->next_ephemeral_port();
        if (const auto src = spec.src->primary_addr(spec.dst.family()))
          flow->probe.src = *src;
        flow->cwnd = static_cast<double>(spec.config.init_cwnd_packets) *
                     flow->mss();
        flow->start = loop_.now();
        flow->inject_end =
            loop_.now() + SimTime::from_seconds(spec.config.duration_s);
        flow->last_progress = loop_.now();
      }
      flows_.push_back(std::move(flow));
    }
  }

  std::vector<StreamStats> run() {
    // Kick every resolvable flow off at the start instant, in spec order
    // (the loop's tie-breaking makes that order part of the contract).
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      auto& flow = *flows_[i];
      if (!flow.stats.ran) continue;
      const auto& cfg = flow.spec->config;
      if (cfg.source_bitrate_bps > 0.0)
        loop_.schedule_at(loop_.now(), *this, tag_of(i, kMediaTick));
      if (cfg.sample_interval_ms > 0.0)
        loop_.schedule_after(ms_time(cfg.sample_interval_ms), *this,
                             tag_of(i, kSample));
      try_send(flow);
    }
    loop_.run();

    std::vector<StreamStats> out;
    out.reserve(flows_.size());
    for (auto& flow : flows_) {
      auto& s = flow->stats;
      if (flow->rtt_samples > 0)
        s.queue_delay_mean_ms = flow->queue_delay_sum_ms /
                                static_cast<double>(flow->rtt_samples);
      s.cwnd_final_bytes = flow->cwnd;
      out.push_back(std::move(s));
    }
    obs::count("traffic.events", loop_.dispatched());
    return out;
  }

  [[nodiscard]] const EventLoop& loop() const noexcept { return loop_; }

  void on_event(EventLoop&, std::uint64_t tag) override {
    const std::uint64_t index = tag >> 3;
    switch (static_cast<EventKind>(tag & 7)) {
      case kArrive: arrive(pool_[index], index); break;
      case kTxComplete: tx_complete(pool_[index], index); break;
      case kDeliver: deliver(pool_[index], index); break;
      case kAck: ack(pool_[index], index); break;
      case kMediaTick: media_tick(*flows_[index], index); break;
      case kRto: rto_fire(*flows_[index], index); break;
      case kSample: sample(*flows_[index], index); break;
    }
  }

 private:
  // --- sender side -----------------------------------------------------------

  void try_send(FlowState& flow) {
    while (loop_.now() < flow.inject_end &&
           flow.bytes_in_flight + flow.mss() <= flow.cwnd &&
           flow.media_available()) {
      send_packet(flow);
    }
  }

  void send_packet(FlowState& flow) {
    const std::uint32_t seq = flow.next_seq++;
    ++flow.stats.sent_packets;
    obs::count("traffic.sent");
    if (flow.spec->config.source_bitrate_bps > 0.0)
      flow.media_credit_bytes -= flow.mss();
    flow.bytes_in_flight += flow.mss();
    if (!flow.rto_armed) arm_rto(flow);

    // Fault plane: consulted once, before the first queue. A drop here is
    // the injector's (faults.* / fault_drops) — the packet never occupies
    // queue bytes, so it can't also tail-drop or pick up an ECN mark.
    double extra_latency_ms = 0.0;
    if (auto* injector = net_.fault_injector(); injector != nullptr) {
      const auto verdict = injector->on_deliver(
          flow.probe, flow.path.routers.data(), flow.path.routers.size(),
          loop_.now().millis());
      if (verdict.drop) {
        ++flow.stats.fault_drops;
        obs::count("traffic.fault_drop");
        return;  // sender learns through the ack gap, like any loss
      }
      extra_latency_ms = verdict.extra_latency_ms;
    }

    const std::uint64_t index = alloc();
    auto& p = pool_[index];
    p.flow = &flow;
    p.link = nullptr;
    p.sent_at = loop_.now();
    p.seq = seq;
    p.bytes = flow.spec->config.packet_bytes;
    p.hop = 0;
    p.ecn = false;
    // Cross the sender's access leg (plus any fault latency) to hop 0.
    loop_.schedule_after(ms_time(flow.path.src_access_ms + extra_latency_ms),
                         *this, tag_of(index, kArrive));
  }

  void media_tick(FlowState& flow, std::uint64_t flow_index) {
    flow.media_credit_bytes += flow.mss();
    try_send(flow);
    const double interval_ms = static_cast<double>(flow.mss()) * 8e3 /
                               flow.spec->config.source_bitrate_bps;
    if (loop_.now() + ms_time(interval_ms) < flow.inject_end)
      loop_.schedule_after(ms_time(interval_ms), *this,
                           tag_of(flow_index, kMediaTick));
  }

  void arm_rto(FlowState& flow) {
    flow.rto_armed = true;
    loop_.schedule_after(ms_time(flow.rto_interval_ms()), *this,
                         tag_of(flow.index, kRto));
  }

  void rto_fire(FlowState& flow, std::uint64_t) {
    flow.rto_armed = false;
    if (flow.bytes_in_flight <= 0.0) return;  // try_send re-arms on demand
    if ((loop_.now() - flow.last_progress).millis() >=
        flow.rto_interval_ms()) {
      // Nothing came back for a full RTO: declare the window lost and
      // restart from the floor. No retransmission — this is a media
      // stream; the next frames matter, the lost ones do not.
      flow.bytes_in_flight = 0.0;
      flow.cwnd = static_cast<double>(flow.spec->config.min_cwnd_packets) *
                  flow.mss();
      flow.ssthresh = std::max(flow.cwnd, flow.ssthresh * 0.5);
      ++flow.stats.cwnd_decreases;
      ++flow.stats.rto_resets;
      obs::count("traffic.rto_reset");
      try_send(flow);
    }
    if (flow.bytes_in_flight > 0.0) arm_rto(flow);
  }

  void sample(FlowState& flow, std::uint64_t flow_index) {
    flow.stats.timeline.push_back(
        StreamSample{(loop_.now() - flow.start).millis(),
                     flow.last_queue_delay_ms, flow.cwnd});
    const auto interval = ms_time(flow.spec->config.sample_interval_ms);
    if (loop_.now() + interval <= flow.inject_end)
      loop_.schedule_after(interval, *this, tag_of(flow_index, kSample));
  }

  void maybe_decrease(FlowState& flow, double beta) {
    // At most one multiplicative decrease per RTT: a whole window of ECN
    // echoes is one congestion signal, not dozens.
    const double guard_ms = std::max(flow.srtt_ms, 10.0);
    if (loop_.now().millis() - flow.last_decrease_ms < guard_ms) return;
    flow.last_decrease_ms = loop_.now().millis();
    const double floor_bytes =
        static_cast<double>(flow.spec->config.min_cwnd_packets) * flow.mss();
    flow.cwnd = std::max(floor_bytes, flow.cwnd * beta);
    flow.ssthresh = flow.cwnd;
    ++flow.stats.cwnd_decreases;
  }

  void ack(PacketInFlight& p, std::uint64_t index) {
    FlowState& flow = *p.flow;
    auto& s = flow.stats;
    // Sequence-gap loss detection: same path, same size, FIFO queues — so
    // acks arrive in send order and a gap means the missing packets died.
    if (p.seq > flow.next_ack_expected) {
      const std::uint64_t gap = p.seq - flow.next_ack_expected;
      s.loss_detected += gap;
      flow.bytes_in_flight = std::max(
          0.0, flow.bytes_in_flight - static_cast<double>(gap) * flow.mss());
      maybe_decrease(flow, flow.spec->config.loss_beta);
    }
    if (p.seq >= flow.next_ack_expected) flow.next_ack_expected = p.seq + 1;
    flow.bytes_in_flight =
        std::max(0.0, flow.bytes_in_flight - flow.mss());
    flow.last_progress = loop_.now();

    const double rtt_ms = (loop_.now() - p.sent_at).millis();
    flow.srtt_ms =
        flow.srtt_ms <= 0.0 ? rtt_ms : 0.875 * flow.srtt_ms + 0.125 * rtt_ms;
    if (s.min_rtt_ms <= 0.0 || rtt_ms < s.min_rtt_ms) s.min_rtt_ms = rtt_ms;
    if (rtt_ms > s.max_rtt_ms) s.max_rtt_ms = rtt_ms;
    const double queue_delay_ms = std::max(0.0, rtt_ms - s.base_rtt_ms);
    flow.last_queue_delay_ms = queue_delay_ms;
    flow.queue_delay_sum_ms += queue_delay_ms;
    ++flow.rtt_samples;
    if (queue_delay_ms > s.queue_delay_max_ms)
      s.queue_delay_max_ms = queue_delay_ms;
    obs::histogram_observe(s.queue_delay_hist_ms, queue_delay_ms,
                           obs::kQueueDelayBucketsMs);
    obs::observe("traffic.queue_delay_ms", queue_delay_ms,
                 obs::kRttBucketsMs);

    if (p.ecn) {
      ++s.ecn_marks;
      obs::count("traffic.ecn_echo");
      maybe_decrease(flow, flow.spec->config.ecn_beta);
    } else if (flow.cwnd < flow.ssthresh) {
      flow.cwnd += flow.mss();  // slow start
    } else {
      flow.cwnd += flow.mss() * flow.mss() / flow.cwnd;  // additive increase
    }
    flow.cwnd = std::min(
        flow.cwnd,
        static_cast<double>(flow.spec->config.max_cwnd_packets) * flow.mss());
    release(index);
    try_send(flow);
  }

  // --- network side ----------------------------------------------------------

  LinkState* link_state(RouterId u, RouterId v) {
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (const auto it = links_.find(key); it != links_.end())
      return it->second.get();
    const auto* capacity = net_.link_capacity(u, v);
    if (capacity == nullptr) {
      links_.emplace(key, nullptr);  // negative-cache uncapacitated links
      return nullptr;
    }
    auto state =
        std::make_unique<LinkState>(*capacity, net_.min_link_latency(u, v));
    auto* raw = state.get();
    links_.emplace(key, std::move(state));
    return raw;
  }

  void arrive(PacketInFlight& p, std::uint64_t index) {
    FlowState& flow = *p.flow;
    const auto& routers = flow.path.routers;
    if (p.hop + 1 >= routers.size()) {
      // At the destination router: cross the access leg and deliver.
      loop_.schedule_after(ms_time(flow.path.dst_access_ms), *this,
                           tag_of(index, kDeliver));
      return;
    }
    const RouterId u = routers[p.hop];
    const RouterId v = routers[p.hop + 1];
    LinkState* link = link_state(u, v);
    if (link == nullptr) {
      // Uncapacitated link: pure propagation, the pre-capacity behaviour.
      ++p.hop;
      loop_.schedule_after(ms_time(net_.min_link_latency(u, v)), *this,
                           tag_of(index, kArrive));
      return;
    }
    if (!link->busy) {
      start_tx(*link, index);
      return;
    }
    if (!link->queue.offer(index, p.bytes, loop_.now())) {
      ++flow.stats.queue_drops;
      obs::count("traffic.queue_drop");
      release(index);
    }
    // Accepted: the packet waits in the FIFO; tx_complete pops it.
  }

  void start_tx(LinkState& link, std::uint64_t index) {
    link.busy = true;
    auto& p = pool_[index];
    p.link = &link;
    loop_.schedule_after(us_time(link.capacity->serialize_us(p.bytes)), *this,
                         tag_of(index, kTxComplete));
  }

  void tx_complete(PacketInFlight& p, std::uint64_t index) {
    LinkState& link = *p.link;
    p.link = nullptr;
    ++p.hop;
    loop_.schedule_after(ms_time(link.prop_ms), *this, tag_of(index, kArrive));
    if (!link.queue.empty()) {
      const auto entry = link.queue.pop();
      auto& next = pool_[entry.token];
      if (entry.ecn_marked) next.ecn = true;  // CE sticks for the whole path
      start_tx(link, entry.token);
    } else {
      link.busy = false;
    }
  }

  void deliver(PacketInFlight& p, std::uint64_t index) {
    FlowState& flow = *p.flow;
    ++flow.stats.delivered_packets;
    flow.stats.delivered_bytes += p.bytes;
    obs::count("traffic.delivered");
    // The receiver echoes seq + CE in a small ack that rides the reverse
    // path as pure delay: acks are ~2% of the data size, so their
    // serialization and queueing are below this model's resolution.
    loop_.schedule_after(ms_time(flow.reverse_delay_ms), *this,
                         tag_of(index, kAck));
  }

  // --- packet pool -----------------------------------------------------------

  std::uint64_t alloc() {
    if (!free_.empty()) {
      const std::uint64_t index = free_.back();
      free_.pop_back();
      return index;
    }
    pool_.emplace_back();
    return pool_.size() - 1;
  }
  void release(std::uint64_t index) { free_.push_back(index); }

  netsim::Network& net_;
  EventLoop loop_;
  std::vector<std::unique_ptr<FlowState>> flows_;
  std::unordered_map<std::uint64_t, std::unique_ptr<LinkState>> links_;
  std::vector<PacketInFlight> pool_;
  std::vector<std::uint64_t> free_;
};

}  // namespace

std::vector<StreamStats> run_streams(netsim::Network& net,
                                     const std::vector<StreamSpec>& specs) {
  obs::Span span("traffic.run", "transport");
  if (span) span.arg("flows", static_cast<std::int64_t>(specs.size()));
  const auto start = net.clock().now();
  Plane plane(net, specs);
  auto out = plane.run();
  // Charge the whole simulated episode to the shard clock, so suites that
  // run after a speed test see time exactly where the last packet left it.
  net.clock().advance(plane.loop().now() - start);
  return out;
}

}  // namespace vpna::transport

#include "util/table.h"

#include <algorithm>

namespace vpna::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += cell;
      if (c + 1 < widths.size())
        line += std::string(widths[c] - cell.size() + 2, ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out += std::string(total, '-') + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string ascii_bar(double value, double max_value, std::size_t width) {
  if (max_value <= 0.0 || value <= 0.0 || width == 0) return {};
  auto cells = static_cast<std::size_t>(value / max_value * static_cast<double>(width));
  cells = std::clamp<std::size_t>(cells, 1, width);
  return std::string(cells, '#');
}

}  // namespace vpna::util

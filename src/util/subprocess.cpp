#include "util/subprocess.h"

#include <cerrno>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace vpna::util {

namespace {

// Parent-side pipe fds of every live Subprocess. Freshly-forked children
// close all of these so a worker never holds a sibling's pipe open (which
// would mask the EOF that signals the sibling's death).
std::mutex g_parent_fds_mu;
std::vector<int> g_parent_fds;

void register_parent_fd(int fd) {
  std::lock_guard<std::mutex> lock(g_parent_fds_mu);
  g_parent_fds.push_back(fd);
}

void unregister_parent_fd(int fd) {
  std::lock_guard<std::mutex> lock(g_parent_fds_mu);
  for (auto it = g_parent_fds.begin(); it != g_parent_fds.end(); ++it) {
    if (*it == fd) {
      g_parent_fds.erase(it);
      return;
    }
  }
}

// Runs in the child between fork and the worker body; async-signal-safety
// is not a concern for the mutex here because the campaign supervisor forks
// from a single-threaded context (no StatusMonitor thread in isolate mode),
// so no other thread can hold the lock across the fork.
void close_registered_fds_in_child() {
  for (int fd : g_parent_fds) ::close(fd);
  g_parent_fds.clear();
}

struct PipePair {
  int read_fd = -1;
  int write_fd = -1;
};

PipePair make_pipe() {
  int fds[2];
  if (::pipe(fds) != 0)
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  return {fds[0], fds[1]};
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

ExitStatus decode_wait_status(int wstatus) {
  ExitStatus s;
  if (WIFEXITED(wstatus)) {
    s.exited = true;
    s.code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    s.signaled = true;
    s.signal = WTERMSIG(wstatus);
  }
  return s;
}

}  // namespace

std::string ExitStatus::describe() const {
  char buf[64];
  if (exited) {
    std::snprintf(buf, sizeof(buf), "exit %d", code);
  } else if (signaled) {
    const char* name = ::strsignal(signal);
    std::snprintf(buf, sizeof(buf), "signal %d (%s)", signal,
                  name != nullptr ? name : "?");
  } else {
    std::snprintf(buf, sizeof(buf), "unknown status");
  }
  return buf;
}

Subprocess::~Subprocess() {
  if (valid() && !status_.has_value()) kill_now();
  reset();
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_),
      stdin_fd_(other.stdin_fd_),
      stdout_fd_(other.stdout_fd_),
      status_(other.status_) {
  other.pid_ = -1;
  other.stdin_fd_ = -1;
  other.stdout_fd_ = -1;
  other.status_.reset();
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this == &other) return *this;
  if (valid() && !status_.has_value()) kill_now();
  reset();
  pid_ = other.pid_;
  stdin_fd_ = other.stdin_fd_;
  stdout_fd_ = other.stdout_fd_;
  status_ = other.status_;
  other.pid_ = -1;
  other.stdin_fd_ = -1;
  other.stdout_fd_ = -1;
  other.status_.reset();
  return *this;
}

void Subprocess::reset() noexcept {
  if (stdin_fd_ >= 0) {
    unregister_parent_fd(stdin_fd_);
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
  if (stdout_fd_ >= 0) {
    unregister_parent_fd(stdout_fd_);
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
  pid_ = -1;
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) throw std::invalid_argument("Subprocess::spawn: empty argv");
  const PipePair to_child = make_pipe();    // parent writes, child reads
  const PipePair from_child = make_pipe();  // child writes, parent reads

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child.read_fd);
    ::close(to_child.write_fd);
    ::close(from_child.read_fd);
    ::close(from_child.write_fd);
    throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: wire the pipes onto stdio, drop every other tracked fd, exec.
    ::dup2(to_child.read_fd, STDIN_FILENO);
    ::dup2(from_child.write_fd, STDOUT_FILENO);
    ::close(to_child.read_fd);
    ::close(to_child.write_fd);
    ::close(from_child.read_fd);
    ::close(from_child.write_fd);
    close_registered_fds_in_child();
    ::execvp(cargv[0], cargv.data());
    // exec failed: 127 per shell convention. Write nothing to stdout — the
    // supervisor treats an empty stream + exit 127 as a spawn failure.
    ::_exit(127);
  }

  ::close(to_child.read_fd);
  ::close(from_child.write_fd);
  Subprocess p;
  p.pid_ = pid;
  p.stdin_fd_ = to_child.write_fd;
  p.stdout_fd_ = from_child.read_fd;
  set_cloexec(p.stdin_fd_);
  set_cloexec(p.stdout_fd_);
  set_nonblocking(p.stdout_fd_);
  register_parent_fd(p.stdin_fd_);
  register_parent_fd(p.stdout_fd_);
  return p;
}

Subprocess Subprocess::fork_child(
    const std::function<int(int, int)>& child_main) {
  const PipePair to_child = make_pipe();
  const PipePair from_child = make_pipe();

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child.read_fd);
    ::close(to_child.write_fd);
    ::close(from_child.read_fd);
    ::close(from_child.write_fd);
    throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::close(to_child.write_fd);
    ::close(from_child.read_fd);
    close_registered_fds_in_child();
    int code = 125;
    try {
      code = child_main(to_child.read_fd, from_child.write_fd);
    } catch (...) {
      code = 125;
    }
    // _exit, not exit: the child's only contract is the bytes it already
    // wrote to the pipe; running inherited atexit/static teardown here
    // could touch copy-on-write state the parent still owns logically.
    ::_exit(code);
  }

  ::close(to_child.read_fd);
  ::close(from_child.write_fd);
  Subprocess p;
  p.pid_ = pid;
  p.stdin_fd_ = to_child.write_fd;
  p.stdout_fd_ = from_child.read_fd;
  set_cloexec(p.stdin_fd_);
  set_cloexec(p.stdout_fd_);
  set_nonblocking(p.stdout_fd_);
  register_parent_fd(p.stdin_fd_);
  register_parent_fd(p.stdout_fd_);
  return p;
}

void Subprocess::close_stdin() {
  if (stdin_fd_ >= 0) {
    unregister_parent_fd(stdin_fd_);
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
}

std::optional<ExitStatus> Subprocess::poll() {
  if (status_.has_value()) return status_;
  if (!valid()) return std::nullopt;
  int wstatus = 0;
  const pid_t r = ::waitpid(pid_, &wstatus, WNOHANG);
  if (r == pid_) status_ = decode_wait_status(wstatus);
  return status_;
}

ExitStatus Subprocess::wait() {
  if (status_.has_value()) return *status_;
  int wstatus = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &wstatus, 0);
  } while (r < 0 && errno == EINTR);
  status_ = r == pid_ ? decode_wait_status(wstatus) : ExitStatus{};
  return *status_;
}

bool Subprocess::running() { return valid() && !poll().has_value(); }

void Subprocess::signal(int sig) {
  if (valid() && !status_.has_value()) ::kill(pid_, sig);
}

void Subprocess::kill_now() {
  if (!valid() || status_.has_value()) return;
  ::kill(pid_, SIGKILL);
  wait();
}

bool read_available(int fd, std::string* out) {
  char buf[16384];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out->append(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) return true;
      continue;  // more may be pending
    }
    if (n == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string current_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return buf;
}

}  // namespace vpna::util

// Plain-text table renderer used by the benchmark harness to print the
// paper's tables and figure series side by side with measured values.
#pragma once

#include <string>
#include <vector>

namespace vpna::util {

// A simple column-aligned ASCII table. Rows may have fewer cells than the
// header; missing cells render empty.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  // Renders with a header underline and two-space column gaps.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders a horizontal ASCII bar of `width` cells proportional to
// value/max_value (at least one cell when value > 0). Used for the
// figure-style benches (payment methods, tunneling protocols, heat maps).
[[nodiscard]] std::string ascii_bar(double value, double max_value,
                                    std::size_t width);

}  // namespace vpna::util

// Process memory telemetry: peak / current resident set size read from
// /proc/self/status. Wall-clock-style observability — never part of any
// deterministic payload — used by the scaled-campaign report and the bench
// harness's peak-RSS columns. Returns 0 where procfs is unavailable.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vpna::util {

namespace detail {

inline std::size_t proc_status_kb(const char* key) noexcept {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      kb = static_cast<std::size_t>(std::strtoull(line + key_len, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace detail

// High-water-mark resident set size of this process, in KiB (VmHWM).
inline std::size_t peak_rss_kb() noexcept {
  return detail::proc_status_kb("VmHWM:");
}

// Current resident set size, in KiB (VmRSS).
inline std::size_t current_rss_kb() noexcept {
  return detail::proc_status_kb("VmRSS:");
}

}  // namespace vpna::util

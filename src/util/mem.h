// Process memory telemetry: peak / current resident set size read from
// /proc/self/status. Wall-clock-style observability — never part of any
// deterministic payload — used by the scaled-campaign report and the bench
// harness's peak-RSS columns. Degrades to 0 — never garbage — when procfs
// is unavailable, the field is absent, or a line is malformed.
#pragma once

#include <cctype>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace vpna::util {

namespace detail {

// Parses "<key>\s*<digits>( kB)?" out of a /proc/self/status-style buffer.
// Strict where it matters: the key must start a line, the value must have
// at least one digit, and a unit (when present) must be kB. Anything else
// — key missing, non-numeric value, foreign unit, truncated line — reads
// as 0, so telemetry consumers see "unknown", never a garbage number.
// Split out from the procfs read so tests can feed malformed buffers.
inline std::size_t parse_status_kb(std::string_view status,
                                   std::string_view key) noexcept {
  std::size_t line_start = 0;
  while (line_start < status.size()) {
    std::size_t line_end = status.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = status.size();
    const std::string_view line =
        status.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.substr(0, key.size()) != key) continue;

    std::size_t pos = key.size();
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t'))
      ++pos;
    std::size_t digits_end = pos;
    while (digits_end < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[digits_end])))
      ++digits_end;
    if (digits_end == pos) return 0;  // "VmHWM:" with no numeric value

    std::size_t kb = 0;
    for (std::size_t i = pos; i < digits_end; ++i) {
      const auto digit = static_cast<std::size_t>(line[i] - '0');
      if (kb > (static_cast<std::size_t>(-1) - digit) / 10) return 0;
      kb = kb * 10 + digit;
    }

    std::size_t unit = digits_end;
    while (unit < line.size() && (line[unit] == ' ' || line[unit] == '\t'))
      ++unit;
    std::string_view rest = line.substr(unit);
    while (!rest.empty() && (rest.back() == '\r' || rest.back() == ' '))
      rest.remove_suffix(1);
    if (!rest.empty() && rest != "kB") return 0;  // bytes? pages? unknown.
    return kb;
  }
  return 0;  // field absent (not every kernel exposes every Vm* line)
}

inline std::size_t proc_status_kb(const char* key) noexcept {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  // /proc/self/status is ~1.5 KiB; one fixed buffer covers it with slack,
  // and a field past the truncation point reads as absent (0), not garbage.
  char buf[8192];
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  return parse_status_kb(std::string_view(buf, n), key);
}

}  // namespace detail

// High-water-mark resident set size of this process, in KiB (VmHWM).
inline std::size_t peak_rss_kb() noexcept {
  return detail::proc_status_kb("VmHWM:");
}

// Current resident set size, in KiB (VmRSS).
inline std::size_t current_rss_kb() noexcept {
  return detail::proc_status_kb("VmRSS:");
}

}  // namespace vpna::util

// Work-stealing thread pool for embarrassingly parallel campaign work.
//
// Each worker owns a deque; submissions are distributed round-robin and an
// idle worker steals from the back of a victim's deque. Tasks carry optional
// retry and timeout policy (generalizing the runner's connect_attempts), and
// every worker keeps lightweight counters (tasks run, steals, retries,
// timeouts, busy wall/cpu time) that campaign reports surface.
//
// The pool schedules work; it never makes results depend on scheduling. Any
// task set whose tasks are independent and individually deterministic yields
// the same results at any worker count — that contract is what the parallel
// campaign engine builds on (see DESIGN.md §7).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace vpna::util {

// Per-task execution policy.
struct TaskOptions {
  // Total attempts before the task's failure is surfaced (>= 1). A thrown
  // exception or an exceeded timeout consumes one attempt.
  int max_attempts = 1;
  // Per-attempt wall-clock budget in seconds; 0 disables the check. The
  // pool cannot preempt a running task, so the timeout is checked when the
  // attempt finishes: an over-budget attempt is discarded and retried (or
  // reported as TaskTimeoutError once attempts are exhausted).
  double timeout_s = 0.0;
};

// Raised through the task's future when every attempt exceeded its budget.
class TaskTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Counters one worker accumulates over its lifetime. Snapshot via
// TaskPool::counters(); totals via TaskPool::total_counters().
struct WorkerCounters {
  std::uint64_t tasks_run = 0;  // attempts started (retries included)
  std::uint64_t steals = 0;     // tasks taken from another worker's deque
  std::uint64_t retries = 0;    // failed attempts that were re-run
  std::uint64_t timeouts = 0;   // attempts discarded for exceeding budget
  double busy_wall_s = 0.0;     // wall time spent inside task bodies
  double busy_cpu_s = 0.0;      // thread cpu time spent inside task bodies
};

class TaskPool {
 public:
  // workers == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit TaskPool(std::size_t workers = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  // Index of the pool worker running the calling thread, or -1 when the
  // caller is not a pool worker (e.g. the serial in-caller path). Lets a
  // task attribute status heartbeats to its worker without threading the
  // index through every task signature.
  [[nodiscard]] static int current_worker_index() noexcept;

  // Schedules `fn` and returns a future for its result. Retry/timeout
  // policy comes from `opts`; the final failure (exception or timeout)
  // propagates through the future.
  template <typename F>
  auto submit(F fn, TaskOptions opts = {})
      -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto prom = std::make_shared<std::promise<R>>();
    auto fut = prom->get_future();
    auto body = std::make_shared<F>(std::move(fn));
    enqueue([prom, body, opts](WorkerCounters& c) {
      run_with_policy<R>(*prom, *body, opts, c);
    });
    return fut;
  }

  // Blocks until every submitted task has finished (including retries).
  void wait_idle();

  // Per-worker counter snapshot. Values are exact once the pool is idle;
  // mid-flight reads are safe but may lag in-progress tasks.
  [[nodiscard]] std::vector<WorkerCounters> counters() const;
  [[nodiscard]] WorkerCounters total_counters() const;

 private:
  using Task = std::function<void(WorkerCounters&)>;

  struct Worker {
    // Guards both queue and counters. Every counter write — the steal bump
    // in try_acquire and the post-task delta merge in worker_loop — happens
    // under this mutex, and counters() reads under it too, so a concurrent
    // snapshot can lag in-flight tasks but never observes a torn update.
    mutable std::mutex mu;
    std::deque<Task> queue;
    WorkerCounters counters;
    std::thread thread;
  };

  template <typename R, typename F>
  static void run_with_policy(std::promise<R>& prom, F& body, TaskOptions opts,
                              WorkerCounters& c) {
    const int attempts = opts.max_attempts < 1 ? 1 : opts.max_attempts;
    for (int attempt = 1; attempt <= attempts; ++attempt) {
      ++c.tasks_run;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        if constexpr (std::is_void_v<R>) {
          body();
          if (attempt_timed_out(t0, opts)) {
            ++c.timeouts;
            if (attempt < attempts) {
              ++c.retries;
              continue;
            }
            prom.set_exception(std::make_exception_ptr(
                TaskTimeoutError("task exceeded per-attempt budget")));
            return;
          }
          prom.set_value();
        } else {
          R result = body();
          if (attempt_timed_out(t0, opts)) {
            ++c.timeouts;
            if (attempt < attempts) {
              ++c.retries;
              continue;
            }
            prom.set_exception(std::make_exception_ptr(
                TaskTimeoutError("task exceeded per-attempt budget")));
            return;
          }
          prom.set_value(std::move(result));
        }
        return;
      } catch (const std::future_error&) {
        throw;  // promise already satisfied: a bug, not a task failure
      } catch (...) {
        if (attempt < attempts) {
          ++c.retries;
          continue;
        }
        prom.set_exception(std::current_exception());
        return;
      }
    }
  }

  static bool attempt_timed_out(std::chrono::steady_clock::time_point t0,
                                const TaskOptions& opts) {
    if (opts.timeout_s <= 0.0) return false;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return elapsed > opts.timeout_s;
  }

  void enqueue(Task task);
  void worker_loop(std::size_t index);
  bool try_acquire(std::size_t index, Task& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t next_queue_ = 0;  // round-robin submission target (under mu_)

  mutable std::mutex mu_;            // guards next_queue_ and wake/idle state
  std::condition_variable wake_cv_;  // work available or shutting down
  std::condition_variable idle_cv_;  // pending_ reached zero
  std::size_t queued_ = 0;           // tasks enqueued, not yet picked up
  std::size_t pending_ = 0;          // tasks enqueued, not yet finished
  bool stop_ = false;
};

}  // namespace vpna::util

#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace vpna::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace vpna::util

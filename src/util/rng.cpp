#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vpna::util {

namespace {

// splitmix64: used to expand a 64-bit seed into generator state.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

Rng Rng::fork(std::string_view label) const noexcept {
  // Child seed depends only on the parent's seed and the label.
  return Rng(seed_ ^ rotl(fnv1a(label), 17) ^ 0xa0761d6478bd642fULL);
}

std::uint64_t Rng::next() noexcept {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free modulo bias is negligible for simulator purposes when
  // span << 2^64, but use Lemire's method for correctness anyway.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < span) {
    std::uint64_t t = (0 - span) % span;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * span;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; draws two uniforms per call, discarding the second variate
  // for implementation simplicity (determinism matters more than speed here).
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::index(std::size_t n) noexcept {
  if (n == 0) return 0;
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_indices: k > n");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: first k positions end up as the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace vpna::util

// String helpers shared across modules: split/join/trim, case folding,
// prefix/suffix tests and printf-style formatting into std::string.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vpna::util {

// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

// Joins with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);
[[nodiscard]] bool contains(std::string_view s, std::string_view needle);

// printf into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace vpna::util

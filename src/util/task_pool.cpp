#include "util/task_pool.h"

#ifdef __linux__
#include <time.h>
#endif

namespace vpna::util {

namespace {

thread_local int t_worker_index = -1;

double thread_cpu_seconds() {
#ifdef __linux__
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) / 1e9;
#endif
  return 0.0;
}

}  // namespace

TaskPool::TaskPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.push_back(std::make_unique<Worker>());
  for (std::size_t i = 0; i < workers; ++i)
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

void TaskPool::enqueue(Task task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % workers_.size();
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->queue.push_back(std::move(task));
  }
  // The task must be visible in a deque before it is counted as queued,
  // otherwise a spinning worker could claim the unit, find every deque
  // empty, and strand the task.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queued_;
  }
  wake_cv_.notify_one();
}

bool TaskPool::try_acquire(std::size_t index, Task& out) {
  // Own queue first (front: submission order), then steal from the back of
  // the first non-empty victim, scanning round-robin from our right
  // neighbour so contention spreads out.
  {
    auto& own = *workers_[index];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.queue.empty()) {
      out = std::move(own.queue.front());
      own.queue.pop_front();
      return true;
    }
  }
  for (std::size_t off = 1; off < workers_.size(); ++off) {
    auto& victim = *workers_[(index + off) % workers_.size()];
    bool stolen = false;
    {
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.queue.empty()) {
        out = std::move(victim.queue.back());
        victim.queue.pop_back();
        stolen = true;
      }
    }
    if (stolen) {
      auto& self = *workers_[index];
      std::lock_guard<std::mutex> lock(self.mu);
      ++self.counters.steals;
      return true;
    }
  }
  return false;
}

int TaskPool::current_worker_index() noexcept { return t_worker_index; }

void TaskPool::worker_loop(std::size_t index) {
  t_worker_index = static_cast<int>(index);
  auto& self = *workers_[index];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (queued_ == 0) {
        if (stop_) return;
        continue;
      }
      // Claim one unit of queued work before releasing the pool lock; the
      // actual task is fetched from the deques below.
      --queued_;
    }
    if (!try_acquire(index, task)) {
      // A concurrent thief took "our" task between the claim and the deque
      // scan. Return the claim so the unit is re-scanned — the matching
      // task is still sitting in some deque.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++queued_;
      }
      wake_cv_.notify_one();
      std::this_thread::yield();
      continue;
    }
    // Policy bookkeeping lands in a task-local delta merged under the
    // worker's lock afterwards, so counters() never races a running task.
    WorkerCounters delta;
    const auto wall0 = std::chrono::steady_clock::now();
    const double cpu0 = thread_cpu_seconds();
    task(delta);
    delta.busy_cpu_s = thread_cpu_seconds() - cpu0;
    delta.busy_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();
    {
      std::lock_guard<std::mutex> lock(self.mu);
      self.counters.tasks_run += delta.tasks_run;
      self.counters.retries += delta.retries;
      self.counters.timeouts += delta.timeouts;
      self.counters.busy_wall_s += delta.busy_wall_s;
      self.counters.busy_cpu_s += delta.busy_cpu_s;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }
}

void TaskPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::vector<WorkerCounters> TaskPool::counters() const {
  std::vector<WorkerCounters> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    out.push_back(w->counters);
  }
  return out;
}

WorkerCounters TaskPool::total_counters() const {
  WorkerCounters total;
  for (const auto& c : counters()) {
    total.tasks_run += c.tasks_run;
    total.steals += c.steals;
    total.retries += c.retries;
    total.timeouts += c.timeouts;
    total.busy_wall_s += c.busy_wall_s;
    total.busy_cpu_s += c.busy_cpu_s;
  }
  return total;
}

}  // namespace vpna::util

// Bump-pointer arena allocator for shard-lifetime objects.
//
// A campaign shard builds tens of thousands of hosts, runs its suite, and
// throws the whole world away. Allocating each host (and its interfaces)
// individually means the build path pays one malloc per object and teardown
// pays one free per object — at O(10³) providers that dominates shard build
// time. The arena instead carves objects out of geometrically-growing
// blocks: allocation is a pointer bump, locality follows construction
// order, and teardown releases whole blocks at once (after running the
// registered destructors of non-trivially-destructible objects, newest
// first, so cross-object references formed during construction unwind in
// reverse).
//
// The arena is NOT thread-safe: each shard world owns its own arena, and a
// shard runs on exactly one worker — the same isolation contract the rest
// of the campaign engine relies on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace vpna::util {

class Arena {
 public:
  // First block size; subsequent blocks double up to kMaxBlockBytes.
  static constexpr std::size_t kInitialBlockBytes = 64 * 1024;
  static constexpr std::size_t kMaxBlockBytes = 4 * 1024 * 1024;

  Arena() = default;
  ~Arena() { reset(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw aligned allocation. Oversized requests (> kMaxBlockBytes) get a
  // dedicated block so they never poison the bump geometry.
  [[nodiscard]] void* allocate(std::size_t size, std::size_t align) {
    const std::uintptr_t cur = reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned = (cur + (align - 1)) & ~(align - 1);
    if (aligned + size <= reinterpret_cast<std::uintptr_t>(limit_)) {
      cursor_ = reinterpret_cast<std::byte*>(aligned + size);
      bytes_allocated_ += size;
      return reinterpret_cast<void*>(aligned);
    }
    return allocate_slow(size, align);
  }

  // Constructs a T in the arena. Destructors of non-trivially-destructible
  // types are registered and run (newest first) at reset()/destruction;
  // trivially-destructible types cost nothing beyond the bump.
  template <typename T, typename... Args>
  [[nodiscard]] T* create(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      finalizers_.push_back(
          {obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  // Runs registered destructors (reverse registration order) and releases
  // every block. The arena is reusable afterwards.
  void reset() noexcept {
    for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it)
      it->destroy(it->object);
    finalizers_.clear();
    blocks_.clear();
    cursor_ = nullptr;
    limit_ = nullptr;
    next_block_bytes_ = kInitialBlockBytes;
    bytes_allocated_ = 0;
    bytes_reserved_ = 0;
  }

  // Pre-sizes the next block so a build with a known footprint (shard host
  // counts are known up front) runs out of exactly zero blocks mid-build.
  void reserve(std::size_t bytes) {
    if (bytes > next_block_bytes_ && cursor_ == limit_)
      next_block_bytes_ = bytes;
  }

  // Sum of the sizes handed out (excludes alignment slop and block slack).
  [[nodiscard]] std::size_t bytes_allocated() const noexcept {
    return bytes_allocated_;
  }
  // Sum of the block sizes actually reserved from the system.
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return bytes_reserved_;
  }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }
  [[nodiscard]] std::size_t object_finalizers() const noexcept {
    return finalizers_.size();
  }

 private:
  struct Finalizer {
    void* object;
    void (*destroy)(void*);
  };

  [[nodiscard]] void* allocate_slow(std::size_t size, std::size_t align) {
    // Dedicated block for oversized requests; normal growth otherwise.
    std::size_t block_bytes = next_block_bytes_;
    if (size + align > block_bytes) {
      block_bytes = size + align;
    } else {
      next_block_bytes_ = std::min(next_block_bytes_ * 2, kMaxBlockBytes);
    }
    blocks_.push_back(std::make_unique<std::byte[]>(block_bytes));
    bytes_reserved_ += block_bytes;
    std::byte* base = blocks_.back().get();
    const std::uintptr_t aligned =
        (reinterpret_cast<std::uintptr_t>(base) + (align - 1)) & ~(align - 1);
    cursor_ = reinterpret_cast<std::byte*>(aligned + size);
    limit_ = base + block_bytes;
    bytes_allocated_ += size;
    return reinterpret_cast<void*>(aligned);
  }

  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::vector<Finalizer> finalizers_;
  std::byte* cursor_ = nullptr;
  std::byte* limit_ = nullptr;
  std::size_t next_block_bytes_ = kInitialBlockBytes;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace vpna::util

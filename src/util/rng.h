// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component of the simulation draws from an Rng seeded from
// a single experiment-level seed, so that every test, example and benchmark
// run is exactly reproducible. The generator is a small, fast xoshiro256**
// implementation; it is NOT cryptographically secure and must never be used
// for key material (the simulator has none).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace vpna::util {

// Splittable deterministic random number generator.
//
// `fork(label)` derives an independent stream from a parent generator and a
// string label, so that adding a new consumer of randomness in one module
// does not perturb the draws seen by any other module.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  // Derives an independent child generator. The child's stream depends only
  // on this generator's seed and `label`, not on how many values have been
  // drawn from the parent.
  [[nodiscard]] Rng fork(std::string_view label) const noexcept;

  // Uniform draw over the full 64-bit range.
  std::uint64_t next() noexcept;

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform real in [0, 1).
  double uniform() noexcept;

  // Uniform real in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  // Normal draw via Box-Muller.
  double normal(double mean, double stddev) noexcept;

  // True with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  // Picks a uniformly random element index for a container of size n.
  // Requires n > 0.
  std::size_t index(std::size_t n) noexcept;

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  // Samples k distinct indices from [0, n). Requires k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t s_[4] = {};
};

// Stable 64-bit FNV-1a hash of a string; used for seed derivation and for
// content fingerprinting in tests.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;

}  // namespace vpna::util

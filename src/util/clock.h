// Virtual simulation time.
//
// All latencies, timeouts and timestamps in the simulator are expressed in
// virtual microseconds managed by a SimClock. Nothing in the library ever
// reads wall-clock time, which keeps runs reproducible and lets the tunnel
// failure test "wait" three virtual minutes instantly.
#pragma once

#include <cstdint>
#include <string>

namespace vpna::util {

// Monotonic virtual time in microseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  constexpr explicit SimTime(std::int64_t micros) noexcept : us_(micros) {}

  [[nodiscard]] constexpr std::int64_t micros() const noexcept { return us_; }
  [[nodiscard]] constexpr double millis() const noexcept { return us_ / 1e3; }
  [[nodiscard]] constexpr double seconds() const noexcept { return us_ / 1e6; }

  static constexpr SimTime from_millis(double ms) noexcept {
    return SimTime(static_cast<std::int64_t>(ms * 1e3));
  }
  static constexpr SimTime from_seconds(double s) noexcept {
    return SimTime(static_cast<std::int64_t>(s * 1e6));
  }

  constexpr SimTime operator+(SimTime o) const noexcept {
    return SimTime(us_ + o.us_);
  }
  constexpr SimTime operator-(SimTime o) const noexcept {
    return SimTime(us_ - o.us_);
  }
  constexpr auto operator<=>(const SimTime&) const noexcept = default;

  // "12.345s" style rendering for logs.
  [[nodiscard]] std::string str() const;

 private:
  std::int64_t us_ = 0;
};

// The clock a simulated world advances. Components hold a reference to the
// world's clock and timestamp events with `now()`.
class SimClock {
 public:
  SimClock() noexcept = default;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  // Advances time; deltas must be non-negative (monotonic clock).
  void advance(SimTime delta) noexcept {
    if (delta.micros() > 0) now_ = now_ + delta;
  }
  void advance_millis(double ms) noexcept { advance(SimTime::from_millis(ms)); }
  void advance_seconds(double s) noexcept { advance(SimTime::from_seconds(s)); }

 private:
  SimTime now_{};
};

}  // namespace vpna::util

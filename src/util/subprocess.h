// POSIX child-process lifecycle for the process-isolated campaign engine:
// spawn (fork/exec or fork-with-callback), piped stdio, non-blocking
// polling, waitpid reaping, and a TERM→KILL escalation helper.
//
// Two spawn modes share one lifecycle:
//  - spawn(argv): classic pipe/fork/execvp. The child's fd 0 reads the
//    command pipe and fd 1 writes the result pipe; stderr is inherited.
//    This is the supervisor's re-exec path (`full_campaign --vpna-worker`):
//    the worker gets a fresh heap, fresh ASLR, and no shared state at all.
//  - fork_child(fn): fork only — the child runs `fn()` and _exits with its
//    return value. The pipes are passed as plain fds (no dup2 onto stdio,
//    so stray printf in shard code cannot corrupt the frame stream). Used
//    by library-level isolation (tests, benches) where re-exec would need
//    a worker binary. The child inherits the parent's heap copy-on-write,
//    which is exactly the point: it can crash, leak, or hang without the
//    supervisor's heap noticing.
//
// Fd hygiene: every parent-side pipe fd is registered in a process-wide
// table and closed in freshly-forked children, so a surviving worker never
// holds a dead sibling's pipe open (which would suppress the EOF the
// supervisor uses to detect the death). Exec-mode children get the same
// guarantee from CLOEXEC.
//
// Destruction policy: a still-running child is SIGKILLed and reaped — a
// supervisor unwinding from an exception must never leak an orphan that
// keeps writing to a closed pipe.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace vpna::util {

// Decoded waitpid(2) status.
struct ExitStatus {
  bool exited = false;    // terminated via exit/_exit
  int code = 0;           // exit code when `exited`
  bool signaled = false;  // terminated by a signal (segfault, OOM kill, ...)
  int signal = 0;         // the fatal signal when `signaled`

  [[nodiscard]] bool success() const noexcept { return exited && code == 0; }
  // "exit 0" | "exit 3" | "signal 9 (Killed)" — for logs and Degradations.
  [[nodiscard]] std::string describe() const;
};

class Subprocess {
 public:
  Subprocess() = default;
  ~Subprocess();  // kill_now() if still running — never leaks an orphan
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  // Fork + execvp(argv[0], argv). Child fd 0 = command pipe (read), fd 1 =
  // result pipe (write), fd 2 inherited. Throws std::runtime_error when
  // pipe/fork fails; an exec failure surfaces as exit code 127.
  [[nodiscard]] static Subprocess spawn(const std::vector<std::string>& argv);

  // Fork only: the child runs `child_main(read_fd, write_fd)` — its ends
  // of the command/result pipes — and _exits with its return value (static
  // destructors and atexit handlers are skipped; the child talks through
  // the pipe, not through teardown). An escaped exception _exits 125.
  [[nodiscard]] static Subprocess fork_child(
      const std::function<int(int read_fd, int write_fd)>& child_main);

  [[nodiscard]] bool valid() const noexcept { return pid_ > 0; }
  [[nodiscard]] pid_t pid() const noexcept { return pid_; }
  // Parent ends: write commands here / read results here. -1 after close.
  [[nodiscard]] int stdin_fd() const noexcept { return stdin_fd_; }
  [[nodiscard]] int stdout_fd() const noexcept { return stdout_fd_; }

  // Half-closes the command pipe — the worker's read loop sees EOF and
  // exits cleanly. Idempotent.
  void close_stdin();

  // Non-blocking reap. Returns the exit status once, then remembers it
  // (subsequent calls return the cached value). nullopt while running.
  std::optional<ExitStatus> poll();
  // Blocking reap.
  ExitStatus wait();
  [[nodiscard]] bool running();  // poll() wrapper
  // The status cached by a previous poll()/wait(), if any.
  [[nodiscard]] const std::optional<ExitStatus>& status() const noexcept {
    return status_;
  }

  // Sends `sig` (no-op once reaped).
  void signal(int sig);
  // SIGKILL + blocking reap (no-op once reaped).
  void kill_now();

 private:
  void reset() noexcept;

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  std::optional<ExitStatus> status_;
};

// Reads whatever is available on `fd` (up to a few KiB) without blocking.
// Appends to *out. Returns false on EOF or unrecoverable error, true while
// the stream is still open (possibly having read 0 bytes on EAGAIN).
bool read_available(int fd, std::string* out);

// Writes all of `data` to `fd`, retrying on EINTR/short writes. Returns
// false on EPIPE or other errors (the peer died mid-command).
bool write_all(int fd, std::string_view data);

// /proc/self/exe (fallback: empty string) — the re-exec worker path.
[[nodiscard]] std::string current_exe_path();

}  // namespace vpna::util

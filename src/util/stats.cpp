#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace vpna::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  s.median = quantile(sorted, 0.5);
  double var = 0;
  for (double x : sorted) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(sorted.size()));
  return s;
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> ecdf_at(std::span<const double> sample,
                            std::span<const double> xs) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    if (sorted.empty()) {
      out.push_back(0.0);
      continue;
    }
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    out.push_back(static_cast<double>(it - sorted.begin()) /
                  static_cast<double>(sorted.size()));
  }
  return out;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const auto n = static_cast<double>(a.size());
  double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::vector<double> ranks(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });
  std::vector<double> r(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}

double spearman(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  return pearson(ra, rb);
}

std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace vpna::util

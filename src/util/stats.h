// Small statistics toolkit used by the analysis module and the benches:
// summaries, quantiles, empirical CDFs, Pearson correlation and Spearman
// rank correlation (the latter drives the vantage-point co-location
// detector, which compares RTT *orderings* across endpoints).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace vpna::util {

// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  double stddev = 0;  // population standard deviation
};

// Computes a Summary; returns a zeroed Summary for an empty sample.
[[nodiscard]] Summary summarize(std::span<const double> xs);

// Linear-interpolated quantile, q in [0,1]. Requires a non-empty sample.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

// Empirical CDF evaluated at a fixed grid of x positions: for each x,
// fraction of the sample <= x.
[[nodiscard]] std::vector<double> ecdf_at(std::span<const double> sample,
                                          std::span<const double> xs);

// Pearson product-moment correlation. Returns 0 when either side has zero
// variance or sizes mismatch/are < 2.
[[nodiscard]] double pearson(std::span<const double> a,
                             std::span<const double> b);

// Spearman rank correlation (Pearson over fractional ranks, ties averaged).
[[nodiscard]] double spearman(std::span<const double> a,
                              std::span<const double> b);

// Fractional ranks (1-based, ties get the average rank).
[[nodiscard]] std::vector<double> ranks(std::span<const double> xs);

// Renders "12.3%" style percentage with one decimal.
[[nodiscard]] std::string percent(double fraction);

}  // namespace vpna::util

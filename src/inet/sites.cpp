#include "inet/sites.h"

#include <array>

namespace vpna::inet {

namespace {

using C = SiteCategory;

// 55 DOM-collection sites. All stay on plain HTTP (upgrades_to_https =
// false) so in-path manipulation has maximum opportunity to show itself.
constexpr std::array<SiteSpec, 55> kDomSites = {{
    // News & politics
    {"daily-courier-news.com", C::kNews, false, true, false, false, 4, "New York"},
    {"metro-herald.net", C::kNews, false, true, false, false, 3, "London"},
    {"worldwire-report.com", C::kNews, false, true, false, false, 4, "Frankfurt"},
    {"capital-dispatch.org", C::kPolitics, false, true, false, false, 3, "Ashburn"},
    {"policy-tribune.net", C::kPolitics, false, true, false, false, 3, "Paris"},
    {"opposition-voice.org", C::kPolitics, false, true, false, false, 2, "Amsterdam"},
    {"election-watchdog.org", C::kPolitics, false, true, false, false, 2, "Stockholm"},
    // Pornography (censored in TR/KR/TH/RU)
    {"adult-theater-x.com", C::kPornography, false, true, false, false, 3, "Amsterdam"},
    {"late-night-cams.com", C::kPornography, false, true, false, false, 3, "Los Angeles"},
    {"velvet-rooms.net", C::kPornography, false, true, false, false, 2, "Prague"},
    {"midnight-gallery.com", C::kPornography, false, true, false, false, 2, "Ashburn"},
    // File sharing (censored in TR/RU/NL)
    {"torrent-harbor.net", C::kFileSharing, false, true, false, false, 3, "Stockholm"},
    {"magnet-bay.org", C::kFileSharing, false, true, false, false, 2, "Bucharest"},
    {"seedbox-central.com", C::kFileSharing, false, true, false, false, 3, "Amsterdam"},
    {"openshare-index.net", C::kFileSharing, false, true, false, false, 2, "Zurich"},
    // Government
    {"civic-services.org", C::kGovernment, false, true, false, false, 3, "Ashburn"},
    {"municipal-records.net", C::kGovernment, false, true, false, false, 2, "Chicago"},
    {"tax-portal-info.org", C::kGovernment, false, true, false, false, 3, "Berlin"},
    // Defense contracting
    {"aerodyn-defense.com", C::kDefense, false, true, false, false, 3, "Ashburn"},
    {"maritime-systems-corp.com", C::kDefense, false, true, false, false, 2, "San Jose"},
    {"forward-armor-group.com", C::kDefense, false, true, false, false, 2, "Dallas"},
    // Streaming (blocks VPN egress ranges, like Hulu/Netflix)
    {"streambox-video.com", C::kStreaming, false, true, true, false, 5, "Seattle"},
    {"cinema-flow.net", C::kStreaming, false, true, true, true, 4, "Los Angeles"},
    {"sportscast-live.com", C::kStreaming, false, true, true, false, 4, "Dallas"},
    // Shopping
    {"bargain-basket.com", C::kShopping, false, true, false, false, 5, "New York"},
    {"global-mart-online.com", C::kShopping, false, true, false, false, 4, "Singapore"},
    {"gadget-bazaar.net", C::kShopping, false, true, false, false, 3, "Hong Kong"},
    // Social / professional (linkedin.com: blocked in Russia)
    {"linkedin.com", C::kProfessional, false, true, false, false, 4, "San Jose"},
    {"chatter-square.com", C::kSocial, false, true, false, false, 4, "San Jose"},
    {"photo-stream-social.net", C::kSocial, false, true, false, false, 3, "Ashburn"},
    // Encyclopedia (wikipedia.org: blocked in Turkey)
    {"wikipedia.org", C::kEncyclopedia, false, true, false, false, 3, "Ashburn"},
    {"open-lexicon.org", C::kEncyclopedia, false, true, false, false, 2, "Amsterdam"},
    // Religion (jw.org: blocked in Russia)
    {"jw.org", C::kReligion, false, true, false, false, 2, "New York"},
    {"faith-community-hub.org", C::kReligion, false, true, false, false, 2, "Atlanta"},
    // Tech & misc
    {"kernel-patch-news.net", C::kTech, false, true, false, false, 3, "San Jose"},
    {"packet-pushers-blog.com", C::kTech, false, true, false, false, 3, "Frankfurt"},
    {"retro-computing-wiki.org", C::kTech, false, true, false, false, 2, "Helsinki"},
    {"devops-daily.net", C::kTech, false, true, false, false, 3, "Dublin"},
    {"crypto-ledger-news.com", C::kTech, false, true, false, false, 3, "Zurich"},
    {"health-advice-portal.com", C::kNews, false, true, false, false, 3, "Toronto"},
    {"travel-nomad-guides.com", C::kNews, false, true, false, false, 3, "Sydney"},
    {"recipe-box-daily.com", C::kShopping, false, true, false, false, 2, "Chicago"},
    {"auto-classifieds-hub.com", C::kShopping, false, true, false, false, 3, "Dallas"},
    {"weather-radar-live.net", C::kNews, false, true, false, false, 2, "Denver"},
    {"job-board-express.com", C::kProfessional, false, true, false, false, 3, "New York"},
    {"real-estate-finder.net", C::kShopping, false, true, false, false, 3, "Miami"},
    {"stock-ticker-watch.com", C::kNews, false, true, false, false, 4, "New York"},
    {"gaming-guild-forums.net", C::kSocial, false, true, false, false, 3, "Seoul"},
    {"anime-fan-portal.com", C::kSocial, false, true, false, false, 3, "Tokyo"},
    {"university-open-courses.org", C::kEncyclopedia, false, true, false, false, 2, "Ashburn"},
    {"pet-care-answers.com", C::kNews, false, true, false, false, 2, "Atlanta"},
    {"diy-fixit-guides.net", C::kTech, false, true, false, false, 2, "Manchester"},
    {"local-events-billboard.com", C::kSocial, false, true, false, false, 2, "Vienna"},
    {"vintage-vinyl-shop.com", C::kShopping, false, true, false, false, 2, "Lisbon"},
    {"language-learning-lab.net", C::kEncyclopedia, false, true, false, false, 3, "Madrid"},
}};

// 150 additional TLS-scan hosts, generated across hosting cities with a mix
// of upgrade behaviour. Built once at static-init time.
const std::vector<SiteSpec>& tls_sites_storage() {
  static const std::vector<SiteSpec> kSites = [] {
    // Hostname storage must outlive the SiteSpec string_views.
    static std::vector<std::string> names;
    constexpr std::array<std::string_view, 10> kHostCities = {
        "New York", "Ashburn",   "London", "Frankfurt", "Amsterdam",
        "Tokyo",    "Singapore", "Sydney", "Sao Paulo", "Toronto"};
    constexpr std::array<std::string_view, 5> kStems = {
        "portal", "cloud", "app", "store", "media"};
    names.reserve(150);
    std::vector<SiteSpec> out;
    out.reserve(150);
    for (int i = 0; i < 150; ++i) {
      names.push_back("tls-" + std::string(kStems[static_cast<std::size_t>(i) % 5]) +
                      "-" + std::to_string(i) + ".com");
      SiteSpec s;
      s.hostname = names.back();
      s.category = C::kTech;
      s.https_available = true;
      // Two thirds upgrade to HTTPS, so stripping would be visible.
      s.upgrades_to_https = (i % 3) != 0;
      // A sprinkle of VPN-hostile services (the paper found "more than a
      // dozen" hosts 403-ing VPN ranges across the scan list).
      s.blocks_vpn_ranges = (i % 11) == 0;
      s.resource_count = 0;
      s.hosting_city = kHostCities[static_cast<std::size_t>(i) % kHostCities.size()];
      out.push_back(s);
    }
    return out;
  }();
  return kSites;
}

}  // namespace

std::span<const SiteSpec> dom_test_sites() { return kDomSites; }

std::span<const SiteSpec> tls_scan_sites() { return tls_sites_storage(); }

std::string_view honeysite_plain() { return "static-page.probe-infra.net"; }
std::string_view honeysite_ads() { return "honey-ads.probe-infra.net"; }
std::string_view header_echo_host() { return "echo.probe-infra.net"; }
std::string_view geo_api_host() { return "geo.api-lookup.net"; }
std::string_view probe_dns_zone() { return "rdns.probe-infra.net"; }
std::string_view stun_host() { return "stun.probe-infra.net"; }

}  // namespace vpna::inet

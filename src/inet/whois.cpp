#include "inet/whois.h"

namespace vpna::inet {

void WhoisDb::add(WhoisRecord record) { records_.push_back(std::move(record)); }

std::optional<WhoisRecord> WhoisDb::lookup(const netsim::IpAddr& addr) const {
  const WhoisRecord* best = nullptr;
  for (const auto& r : records_) {
    if (!r.block.contains(addr)) continue;
    if (best == nullptr || r.block.prefix_len() > best->block.prefix_len())
      best = &r;
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

}  // namespace vpna::inet

// WHOIS registry: maps address blocks to registrant organisation, country
// and origin ASN. The DNS-manipulation test inspects WHOIS ownership of
// suspicious resolutions, and the infrastructure analysis (§6.3) groups
// vantage points by block/ASN.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netsim/ip.h"

namespace vpna::inet {

struct WhoisRecord {
  netsim::Cidr block;
  std::string organisation;
  std::string country_code;  // registration country (ISO)
  std::uint32_t asn = 0;
};

class WhoisDb {
 public:
  void add(WhoisRecord record);

  // Longest-prefix match.
  [[nodiscard]] std::optional<WhoisRecord> lookup(
      const netsim::IpAddr& addr) const;

  [[nodiscard]] const std::vector<WhoisRecord>& records() const noexcept {
    return records_;
  }

 private:
  std::vector<WhoisRecord> records_;
};

}  // namespace vpna::inet

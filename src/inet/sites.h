// The measurement target list: the 55 sites the DOM-collection test loads
// (chosen, per the paper, to stay on plain HTTP and span sensitive
// categories), the two honeysites, the ~150 additional hosts of the TLS
// scan, and supporting infrastructure endpoints (header echo, geolocation
// API, tagged-DNS probe zone).
//
// Hostnames are synthetic stand-ins except the three sites the paper names
// as nationally blocked (wikipedia.org, jw.org, linkedin.com), which are
// needed to reproduce Table 4's host-specific censorship rows.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "inet/censor.h"

namespace vpna::inet {

struct SiteSpec {
  std::string_view hostname;
  SiteCategory category = SiteCategory::kTech;
  bool upgrades_to_https = false;  // redirects http -> https
  bool https_available = true;
  bool blocks_vpn_ranges = false;  // 403s known-VPN egress blocks
  bool blocks_with_empty_200 = false;
  int resource_count = 3;          // sub-resources on the root page
  std::string_view hosting_city;   // where the origin server lives
};

// The 55-site DOM-collection list (none upgrade to HTTPS, maximising the
// manipulation surface, per §5.3.1).
[[nodiscard]] std::span<const SiteSpec> dom_test_sites();

// Additional hosts for the TLS interception/downgrade scan (~150; these do
// have HTTPS and many upgrade).
[[nodiscard]] std::span<const SiteSpec> tls_scan_sites();

// Honeysite hostnames (static DOM; the second carries the ad slot).
[[nodiscard]] std::string_view honeysite_plain();
[[nodiscard]] std::string_view honeysite_ads();

// Measurement-infrastructure endpoints.
[[nodiscard]] std::string_view header_echo_host();   // request reflection
[[nodiscard]] std::string_view geo_api_host();       // IP geolocation API
[[nodiscard]] std::string_view probe_dns_zone();     // tagged-hostname zone
[[nodiscard]] std::string_view stun_host();          // WebRTC-style reflexive addr

// UDP port of the STUN-like reflector.
inline constexpr std::uint16_t kPortStun = 3478;

}  // namespace vpna::inet

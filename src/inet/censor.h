// Country-level censorship middleboxes. Each instance sits on the routers
// of one access/egress network and rewrites HTTP requests for blocked
// categories or hostnames into a 302 redirect to the operator's block page —
// the upstream behaviour behind every redirect the paper's Table 4 reports
// (Turkey, South Korea, Russia, Netherlands, Thailand). Russian deployments
// are per-ISP: each hosting network redirects to its own ISP's block page.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "netsim/network.h"

namespace vpna::inet {

// Site categories used by both the site table and the censor policies.
enum class SiteCategory : std::uint8_t {
  kNews,
  kPolitics,
  kPornography,
  kFileSharing,
  kGovernment,
  kDefense,
  kStreaming,
  kShopping,
  kSocial,
  kTech,
  kEncyclopedia,
  kReligion,
  kProfessional,
  kInfrastructure,  // measurement endpoints; never censored
};

[[nodiscard]] std::string_view category_name(SiteCategory c) noexcept;

// Resolves a hostname to its category. Installed globally by the site
// table builder so censors can classify transit traffic.
class SiteDirectory {
 public:
  void set_category(std::string hostname, SiteCategory category);
  [[nodiscard]] std::optional<SiteCategory> category_of(
      std::string_view hostname) const;

 private:
  std::map<std::string, SiteCategory, std::less<>> categories_;
};

struct CensorPolicy {
  std::string operator_name;           // "TTK", "Korea KCSC", ...
  std::string country_code;
  std::string redirect_url;            // destination block page
  std::set<SiteCategory> blocked_categories;
  std::set<std::string> blocked_hosts;  // exact hostnames blocked outright
};

// The middlebox: inspects transiting HTTP requests (TCP/80) and answers
// blocked ones with an HTTP 302 to the policy's block page. HTTPS traffic
// passes (the paper's censors act on cleartext HTTP).
class CensorMiddlebox final : public netsim::Middlebox {
 public:
  CensorMiddlebox(CensorPolicy policy,
                  std::shared_ptr<const SiteDirectory> directory);

  Verdict on_transit(netsim::Packet& packet) override;

  [[nodiscard]] const CensorPolicy& policy() const noexcept { return policy_; }

  // Count of requests this censor has redirected (for tests).
  [[nodiscard]] std::size_t redirect_count() const noexcept {
    return redirects_;
  }

 private:
  CensorPolicy policy_;
  std::shared_ptr<const SiteDirectory> directory_;
  std::size_t redirects_ = 0;
};

}  // namespace vpna::inet

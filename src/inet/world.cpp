#include "inet/world.h"

#include <array>
#include <stdexcept>

#include "dns/client.h"
#include "http/client.h"
#include "http/url.h"
#include "util/strings.h"

namespace vpna::inet {

namespace {

// Backbone hub cities: fully meshed with each other; every other city links
// to its two nearest hubs plus its three nearest neighbours.
constexpr std::array<std::string_view, 10> kHubs = {
    "New York", "Los Angeles", "London",   "Frankfurt",  "Singapore",
    "Tokyo",    "Sao Paulo",   "Dubai",    "Sydney",     "Johannesburg"};

struct DcSpec {
  std::string_view id;
  std::string_view provider;
  std::string_view city;
  std::string_view pool;  // CIDR text
  std::uint32_t asn;
  bool known_vpn_hosting;
};

// Hosting datacenters. The first eight reproduce the address blocks, ASNs
// and registration countries of the paper's Table 5 (blocks shared by three
// or more VPN providers); the remainder give the ecosystem its geographic
// spread. Provider names are synthetic stand-ins for the hosting companies
// the paper mentions (Digital Ocean, LeaseWeb, SoftLayer, ...).
constexpr std::array<DcSpec, 47> kDatacenters = {{
    // --- Table 5 blocks -----------------------------------------------------
    {"gigacloud-osl", "GigaCloud AS", "Oslo", "82.102.27.0/24", 9009, true},
    {"rootbox-lux", "RootBox Sarl", "Luxembourg", "94.242.192.0/18", 5577, true},
    {"oceancompute-blr", "OceanCompute Ltd", "Bangalore", "139.59.0.0/18", 14061, true},
    {"stratalayer-mex", "StrataLayer Inc", "Mexico City", "169.57.0.0/17", 36351, true},
    {"privatetier-zrh", "PrivateTier GmbH", "Zurich", "179.43.128.0/18", 51852, true},
    {"greenhost-dub", "GreenHost IE", "Dublin", "185.108.128.0/22", 30900, true},
    {"gigaline-kul", "GigaLine MY", "Kuala Lumpur", "202.176.4.0/24", 55720, true},
    {"leaplayer-sin", "LeapLayer Pte", "Singapore", "209.58.176.0/21", 59253, true},
    // --- North America --------------------------------------------------------
    {"oceancompute-nyc", "OceanCompute Ltd", "New York", "45.0.0.0/19", 14061, true},
    {"rentweb-sea", "RentWeb BV", "Seattle", "45.0.32.0/19", 60781, true},
    {"rentweb-mia", "RentWeb BV", "Miami", "45.0.64.0/19", 60781, true},
    {"nodespark-lax", "NodeSpark LLC", "Los Angeles", "45.0.96.0/19", 20473, true},
    {"nodespark-chi", "NodeSpark LLC", "Chicago", "45.0.128.0/19", 20473, false},
    {"stratalayer-dal", "StrataLayer Inc", "Dallas", "45.0.160.0/19", 36351, true},
    {"stratalayer-ash", "StrataLayer Inc", "Ashburn", "45.0.192.0/19", 36351, false},
    {"edgeprime-sjc", "EdgePrime Co", "San Jose", "45.0.224.0/19", 13335, false},
    {"nodespark-atl", "NodeSpark LLC", "Atlanta", "45.1.0.0/19", 20473, false},
    {"maple-tor", "MapleHost", "Toronto", "45.1.32.0/19", 53667, true},
    {"maple-mtl", "MapleHost", "Montreal", "45.1.64.0/19", 53667, true},
    // --- Europe -----------------------------------------------------------------
    {"hosteu-lon", "HostEU Ltd", "London", "45.1.96.0/19", 16276, true},
    {"hosteu-man", "HostEU Ltd", "Manchester", "45.1.128.0/19", 16276, false},
    {"hosteu-ams", "HostEU Ltd", "Amsterdam", "45.1.160.0/19", 60781, true},
    // Two small Dutch access ISPs with court-ordered file-sharing blocks;
    // the big Amsterdam hosting floor (hosteu-ams) is NOT censored, so only
    // providers buying capacity from these ISPs show NL redirects (Table 4
    // reports exactly one VPN behind each NL block page).
    {"upclink-ams", "UpcLink BV", "Amsterdam", "45.4.96.0/19", 6830, true},
    {"ziggonet-ams", "ZiggoNet BV", "Amsterdam", "45.4.224.0/19", 9143, true},
    {"hosteu-fra", "HostEU Ltd", "Frankfurt", "45.1.192.0/19", 24940, true},
    {"hosteu-ber", "HostEU Ltd", "Berlin", "45.1.224.0/19", 24940, false},
    {"hosteu-par", "HostEU Ltd", "Paris", "45.2.0.0/19", 16276, true},
    {"czhost-prg", "CzechHost sro", "Prague", "45.2.32.0/19", 197019, true},
    {"nordichost-sto", "NordicHost AB", "Stockholm", "45.2.64.0/19", 42708, true},
    {"balt-rig", "BaltServ SIA", "Riga", "45.2.96.0/19", 52048, true},
    {"rom-buh", "DaciaNet SRL", "Bucharest", "45.2.128.0/19", 9050, true},
    {"medhost-mil", "MedHost Srl", "Milan", "45.2.160.0/19", 49367, false},
    {"iber-mad", "IberServ SL", "Madrid", "45.2.192.0/19", 12479, false},
    // --- Russia (one datacenter per access ISP; each has its own censor) ------
    {"ttk-mow", "TTK Hosting", "Moscow", "45.3.0.0/19", 20485, true},
    {"hzt-mow", "HoztNode", "Moscow", "45.3.32.0/19", 29226, true},
    {"beeline-mow", "Beeline DC", "Moscow", "45.3.64.0/19", 3216, false},
    {"rt-led", "Rostelecom DC", "St Petersburg", "45.3.96.0/19", 12389, true},
    {"mts-led", "MTS Hosting", "St Petersburg", "45.3.128.0/19", 8359, false},
    {"dtln-nsk", "DataLine NSK", "Novosibirsk", "45.3.160.0/19", 9123, true},
    // --- Censoring & regional ---------------------------------------------------
    {"anatolia-ist", "AnatoliaNet", "Istanbul", "45.3.192.0/19", 34984, true},
    {"anatolia-ank", "AnatoliaNet", "Ankara", "45.3.224.0/19", 34984, false},
    {"hanriver-sel", "HanRiver IDC", "Seoul", "45.4.0.0/19", 9318, true},
    {"siam-bkk", "SiamColo", "Bangkok", "45.4.32.0/19", 131090, true},
    {"sakura-tyo", "SakuraDC", "Tokyo", "45.4.64.0/19", 9370, true},
    {"harbour-hkg", "HarbourCloud", "Hong Kong", "45.4.128.0/19", 9381, true},
    {"aus-syd", "AusgridHost", "Sydney", "45.4.160.0/19", 38195, true},
    {"sam-gru", "SulAmerica DC", "Sao Paulo", "45.4.192.0/19", 28573, true},
}};

// Synthetic IPv6 pool per datacenter index.
netsim::Cidr v6_pool_for(std::size_t dc_index) {
  std::array<std::uint16_t, 8> groups{};
  groups[0] = 0x2a0e;
  groups[1] = static_cast<std::uint16_t>(0x0100 + dc_index);
  return netsim::Cidr(netsim::IpAddr::v6_groups(groups), 32);
}

geo::City require_city(std::string_view name) {
  const auto c = geo::city_by_name(name);
  if (!c) throw std::logic_error("unknown city: " + std::string(name));
  return *c;
}

}  // namespace

World::World(std::uint64_t seed,
             std::shared_ptr<const netsim::RoutingPlane> shared_plane)
    : seed_(seed),
      rng_(seed),
      network_(std::make_unique<netsim::Network>(clock_, util::Rng(seed).fork("network-jitter"))),
      geo_registry_(std::make_shared<geo::AllocationRegistry>()),
      zones_(std::make_shared<dns::ZoneRegistry>()),
      site_directory_(std::make_shared<SiteDirectory>()) {
  build_backbone();
  build_datacenters();
  // The router fabric is complete: later routers (private facilities) are
  // single-link leaves, so the core can freeze here and path resolution
  // runs on the routing plane — adopted when a compatible one was handed
  // in, computed locally otherwise.
  network_->freeze_topology();
  if (shared_plane != nullptr) network_->adopt_routing_plane(std::move(shared_plane));
  build_dns();
  build_web();
  build_anchors();
  build_censors();

  db_maxmind_ = std::make_unique<geo::GeoIpDatabase>(
      geo::make_maxmind_like(geo_registry_, seed_));
  db_ip2location_ = std::make_unique<geo::GeoIpDatabase>(
      geo::make_ip2location_like(geo_registry_, seed_));
  db_google_ = std::make_unique<geo::GeoIpDatabase>(
      geo::make_google_like(geo_registry_, seed_));
}

netsim::Host& World::new_host(std::string name) {
  ++host_count_;
  return *host_arena_.create<netsim::Host>(std::move(name));
}

void World::reserve_hosts(std::size_t extra_hosts) {
  network_->reserve_hosts(extra_hosts);
  // Hosts plus their out-of-line state (interfaces vector etc.) land in the
  // arena only for the Host object itself; 2x sizeof(Host) absorbs the
  // finalizer-table growth and alignment slop without overcommitting.
  host_arena_.reserve(extra_hosts * 2 * sizeof(netsim::Host));
}

void World::build_backbone() {
  const auto all = geo::cities();
  city_routers_.reserve(all.size());
  for (const auto& c : all)
    city_routers_.push_back(network_->add_router(std::string(c.name)));

  // Hub mesh.
  std::vector<std::size_t> hub_idx;
  for (const auto hub : kHubs) {
    for (std::size_t i = 0; i < all.size(); ++i)
      if (all[i].name == hub) hub_idx.push_back(i);
  }
  for (std::size_t i = 0; i < hub_idx.size(); ++i) {
    for (std::size_t j = i + 1; j < hub_idx.size(); ++j) {
      const auto& a = all[hub_idx[i]];
      const auto& b = all[hub_idx[j]];
      network_->add_link(city_routers_[hub_idx[i]], city_routers_[hub_idx[j]],
                         geo::link_latency_ms(a.location, b.location));
    }
  }

  // Every non-hub city: link to 3 nearest cities and 2 nearest hubs.
  for (std::size_t i = 0; i < all.size(); ++i) {
    std::vector<std::pair<double, std::size_t>> by_dist;
    for (std::size_t j = 0; j < all.size(); ++j) {
      if (j == i) continue;
      by_dist.emplace_back(
          geo::haversine_km(all[i].location, all[j].location), j);
    }
    std::sort(by_dist.begin(), by_dist.end());
    int added = 0;
    for (const auto& [km, j] : by_dist) {
      if (added >= 3) break;
      network_->add_link(city_routers_[i], city_routers_[j],
                         geo::link_latency_ms(all[i].location, all[j].location));
      ++added;
    }
    std::vector<std::pair<double, std::size_t>> hubs_by_dist;
    for (const auto h : hub_idx) {
      if (h == i) continue;
      hubs_by_dist.emplace_back(
          geo::haversine_km(all[i].location, all[h].location), h);
    }
    std::sort(hubs_by_dist.begin(), hubs_by_dist.end());
    for (std::size_t k = 0; k < hubs_by_dist.size() && k < 2; ++k) {
      const auto h = hubs_by_dist[k].second;
      network_->add_link(city_routers_[i], city_routers_[h],
                         geo::link_latency_ms(all[i].location, all[h].location));
    }
  }
}

namespace {

// "St Petersburg" -> "st-petersburg" for rDNS labels.
std::string city_slug(std::string_view city) {
  std::string slug;
  for (const char c : city) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    else if (!slug.empty() && slug.back() != '-')
      slug += '-';
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug;
}

}  // namespace

std::optional<std::string> World::reverse_dns(
    const netsim::IpAddr& router_addr) const {
  // Backbone router addresses are synthesized from the router id.
  if (!netsim::Cidr::parse("198.18.0.0/15")->contains(router_addr))
    return std::nullopt;
  const auto bytes = router_addr.bytes();
  const auto id = static_cast<netsim::RouterId>((bytes[2] << 8) | bytes[3]);
  if (id >= network_->router_count()) return std::nullopt;

  const std::string& name = network_->router_name(id);
  if (name.starts_with("dc:")) {
    // Datacenter edge: find the facility to recover its city.
    for (const auto& dc : datacenters_) {
      if ("dc:" + dc.id == name) {
        return "edge." + city_slug(dc.city.name) + "." +
               city_slug(dc.hosting_provider) + ".example";
      }
    }
    return std::nullopt;
  }
  // City core router: the name IS the city.
  if (geo::city_by_name(name))
    return "core1." + city_slug(name) + ".backbone.example";
  return std::nullopt;
}

netsim::RouterId World::router_for_city(std::string_view city) const {
  const auto all = geo::cities();
  for (std::size_t i = 0; i < all.size(); ++i)
    if (all[i].name == city) return city_routers_[i];
  throw std::logic_error("router_for_city: unknown city " + std::string(city));
}

void World::build_datacenters() {
  datacenters_.reserve(kDatacenters.size());
  for (std::size_t i = 0; i < kDatacenters.size(); ++i) {
    const auto& spec = kDatacenters[i];
    Datacenter dc;
    dc.id = std::string(spec.id);
    dc.hosting_provider = std::string(spec.provider);
    dc.city = require_city(spec.city);
    const auto pool = netsim::Cidr::parse(spec.pool);
    if (!pool) throw std::logic_error("bad pool " + std::string(spec.pool));
    dc.pool4 = *pool;
    dc.pool6 = v6_pool_for(i);
    dc.asn = spec.asn;
    dc.registered_country = std::string(dc.city.country_code);
    dc.known_vpn_hosting = spec.known_vpn_hosting;

    // Each datacenter sits behind its own edge router so per-ISP
    // middleboxes (Russian censors) can differ within one city.
    dc.router = network_->add_router("dc:" + dc.id);
    network_->add_link(dc.router, router_for_city(spec.city), 0.2);

    whois_.add(WhoisRecord{dc.pool4, dc.hosting_provider,
                           std::string(dc.city.country_code), dc.asn});
    register_geo(dc.pool4, dc.city, dc.city);
    datacenters_.push_back(std::move(dc));
  }
}

std::vector<Datacenter*> World::datacenters_in(std::string_view country_code) {
  std::vector<Datacenter*> out;
  for (auto& dc : datacenters_)
    if (dc.city.country_code == country_code) out.push_back(&dc);
  return out;
}

Datacenter* World::datacenter_by_id(std::string_view id) {
  for (auto& dc : datacenters_)
    if (dc.id == id) return &dc;
  return nullptr;
}

Datacenter& World::private_datacenter(std::string_view tenant,
                                      std::string_view city) {
  const std::string key = std::string(tenant) + ":" + std::string(city);
  if (const auto it = private_dc_ids_.find(key); it != private_dc_ids_.end())
    return *datacenter_by_id(it->second);

  // Reseller brands cycle deterministically; WHOIS shows the reseller, not
  // the VPN brand (as the paper observed for Boxpn/Anonine).
  static constexpr std::array<std::string_view, 8> kResellers = {
      "BlueRack Hosting", "QuickServ Ltd",   "ColoMatrix",   "NetFoundry SA",
      "RackMarket BV",    "ServerMill LLC",  "IronGrid spol", "HavenNode OU",
  };
  if (next_private_pool_ >= 65000)
    throw std::logic_error("private pool space exhausted");
  const std::uint32_t index = next_private_pool_++;

  Datacenter dc;
  dc.id = "prv:" + key;
  dc.hosting_provider =
      std::string(kResellers[index % kResellers.size()]);
  dc.city = require_city(city);
  dc.pool4 = netsim::Cidr(
      netsim::IpAddr::v4(146, static_cast<std::uint8_t>(index >> 8),
                         static_cast<std::uint8_t>(index & 0xff), 0),
      24);
  dc.pool6 = v6_pool_for(100 + index);
  dc.asn = 200000 + index % 4000;  // 32-bit private-use ASN range
  dc.registered_country = std::string(dc.city.country_code);
  dc.known_vpn_hosting = true;
  dc.router = network_->add_router("dc:" + dc.id);
  network_->add_link(dc.router, router_for_city(city), 0.2);
  whois_.add(WhoisRecord{dc.pool4, dc.hosting_provider,
                         std::string(dc.city.country_code), dc.asn});
  register_geo(dc.pool4, dc.city, dc.city);

  datacenters_.push_back(std::move(dc));
  private_dc_ids_[key] = datacenters_.back().id;
  return datacenters_.back();
}

netsim::IpAddr World::allocate_from(Datacenter& dc) {
  const auto addr = dc.pool4.host_at(dc.next_host);
  ++dc.next_host;
  return addr;
}

namespace {

// Per-tenant /24 slice allocation for facilities with room for it.
netsim::IpAddr allocate_tenant_slice(Datacenter& dc, std::string_view tenant) {
  auto [it, inserted] =
      dc.tenant_slices.try_emplace(std::string(tenant), 0u, 10u);
  if (inserted) {
    it->second.first = dc.next_slice++;
    const std::uint32_t slices =
        1u << (24 - dc.pool4.prefix_len());  // /24s in the pool
    if (it->second.first >= slices)
      throw std::logic_error("datacenter " + dc.id + " out of /24 slices");
  }
  auto& [slice, next] = it->second;
  return dc.pool4.host_at(slice * 256 + next++);
}

}  // namespace

netsim::Host& World::spawn_server(Datacenter& dc, std::string name,
                                  bool with_v6, std::string_view tenant) {
  auto& host = new_host(std::move(name));
  const bool sliced = !tenant.empty() && dc.pool4.prefix_len() < 22;
  const auto addr4 =
      sliced ? allocate_tenant_slice(dc, tenant) : allocate_from(dc);
  std::optional<netsim::IpAddr> addr6;
  if (with_v6 && dc.pool6) {
    // Derive the v6 suffix from the v4 address so the pairing is unique
    // regardless of which allocation policy produced the v4 address.
    auto bytes = dc.pool6->network().bytes();
    const auto v4 = addr4.v4_value();
    bytes[13] = static_cast<std::uint8_t>(v4 >> 16);
    bytes[14] = static_cast<std::uint8_t>(v4 >> 8);
    bytes[15] = static_cast<std::uint8_t>(v4);
    addr6 = netsim::IpAddr::v6(bytes);
  }
  host.add_interface("eth0", addr4, addr6);
  host.routes().add(netsim::Route{netsim::Cidr(netsim::IpAddr::v4(0, 0, 0, 0), 0),
                                  "eth0", std::nullopt, 0});
  if (addr6) {
    host.routes().add(netsim::Route{
        netsim::Cidr(netsim::IpAddr::v6({}), 0), "eth0", std::nullopt, 0});
  }
  // Infrastructure hosts do not run packet capture (memory stays bounded
  // over a full campaign); tests that need a server-side view re-enable it.
  host.capture().set_enabled(false);
  network_->attach_host(host, dc.router, 0.25);
  return host;
}

netsim::Host& World::spawn_client(std::string_view city, std::string name) {
  auto& host = new_host(std::move(name));
  const auto addr4 = netsim::IpAddr::v4(71, 80,
                                        static_cast<std::uint8_t>(next_client_ip_ >> 8),
                                        static_cast<std::uint8_t>(next_client_ip_ & 0xff));
  std::array<std::uint16_t, 8> g{};
  g[0] = 0x2600;
  g[1] = 0x8800;
  g[7] = static_cast<std::uint16_t>(next_client_ip_);
  ++next_client_ip_;
  const auto addr6 = netsim::IpAddr::v6_groups(g);
  host.add_interface("eth0", addr4, addr6);
  host.routes().add(netsim::Route{netsim::Cidr(netsim::IpAddr::v4(0, 0, 0, 0), 0),
                                  "eth0", std::nullopt, 10});
  host.routes().add(netsim::Route{netsim::Cidr(netsim::IpAddr::v6({}), 0),
                                  "eth0", std::nullopt, 10});
  host.dns_servers().push_back(isp_resolver_);
  network_->attach_host(host, router_for_city(city), 4.0);
  return host;
}

void World::register_geo(const netsim::Cidr& block, const geo::City& true_city,
                         const geo::City& registered_city) {
  geo::Allocation a;
  a.block = block;
  a.true_location = geo::GeoRecord{std::string(true_city.country_code),
                                   std::string(true_city.name),
                                   true_city.location};
  a.registered_location =
      geo::GeoRecord{std::string(registered_city.country_code),
                     std::string(registered_city.name),
                     registered_city.location};
  geo_registry_->add(a);
}

void World::build_dns() {
  google_dns_ = netsim::IpAddr::v4(8, 8, 8, 8);
  quad9_dns_ = netsim::IpAddr::v4(9, 9, 9, 9);
  isp_resolver_ = netsim::IpAddr::v4(71, 80, 0, 1);

  // Authoritative server for every simulated website zone.
  auto* ash = datacenter_by_id("stratalayer-ash");
  auto& web_auth_host = spawn_server(*ash, "ns1.webauth");
  web_authority_ = std::make_shared<dns::AuthoritativeService>();
  web_auth_host.bind_service(netsim::Proto::kUdp, netsim::kPortDns,
                             web_authority_);
  web_authority_addr_ = *web_auth_host.primary_addr(netsim::IpFamily::kV4);

  // Logging authority for the tagged probe zone (recursive-origin test).
  auto* chi = datacenter_by_id("nodespark-chi");
  auto& probe_host = spawn_server(*chi, "ns1.probe-infra");
  probe_authority_ = std::make_shared<dns::AuthoritativeService>();
  dns::ZoneRecord probe_apex;
  probe_apex.a = {*probe_host.primary_addr(netsim::IpFamily::kV4)};
  probe_apex.txt = {"probe-zone"};
  probe_authority_->add_wildcard_zone(std::string(probe_dns_zone()), probe_apex);
  probe_host.bind_service(netsim::Proto::kUdp, netsim::kPortDns,
                          probe_authority_);
  zones_->set_authority(std::string(probe_dns_zone()),
                        *probe_host.primary_addr(netsim::IpFamily::kV4));

  // Anycast public resolvers.
  const auto deploy_anycast_resolver = [&](const netsim::IpAddr& addr,
                                           std::string_view label,
                                           std::span<const std::string_view> sites) {
    for (const auto city : sites) {
      auto& h = new_host(util::format("%.*s-%.*s",
                                      static_cast<int>(label.size()), label.data(),
                                      static_cast<int>(city.size()), city.data()));
      h.add_interface("eth0", addr, std::nullopt);
      h.routes().add(netsim::Route{
          netsim::Cidr(netsim::IpAddr::v4(0, 0, 0, 0), 0), "eth0", std::nullopt, 0});
      h.bind_service(netsim::Proto::kUdp, netsim::kPortDns,
                     std::make_shared<dns::RecursiveResolverService>(zones_));
      h.capture().set_enabled(false);
      network_->attach_host(h, router_for_city(city), 0.3);
    }
  };
  constexpr std::array<std::string_view, 8> kGoogleSites = {
      "New York", "Los Angeles", "Frankfurt", "London",
      "Singapore", "Tokyo",      "Sao Paulo", "Sydney"};
  constexpr std::array<std::string_view, 5> kQuad9Sites = {
      "Ashburn", "Amsterdam", "Zurich", "Hong Kong", "Toronto"};
  deploy_anycast_resolver(google_dns_, "gdns", kGoogleSites);
  deploy_anycast_resolver(quad9_dns_, "quad9", kQuad9Sites);

  // The residential ISP's resolver (what an un-tunnelled client uses).
  {
    auto& h = new_host("isp-resolver");
    h.add_interface("eth0", isp_resolver_, std::nullopt);
    h.routes().add(netsim::Route{
        netsim::Cidr(netsim::IpAddr::v4(0, 0, 0, 0), 0), "eth0", std::nullopt, 0});
    h.bind_service(netsim::Proto::kUdp, netsim::kPortDns,
                   std::make_shared<dns::RecursiveResolverService>(zones_));
    h.capture().set_enabled(false);
    network_->attach_host(h, router_for_city("Chicago"), 1.0);
  }

  // Root server instances (ping targets for infrastructure inference).
  struct RootSpec {
    char letter;
    netsim::IpAddr addr;
    std::array<std::string_view, 5> sites;
  };
  const std::array<RootSpec, 5> kRoots = {{
      {'D', netsim::IpAddr::v4(199, 7, 91, 13),
       {"New York", "London", "Tokyo", "Sydney", "Frankfurt"}},
      {'E', netsim::IpAddr::v4(192, 203, 230, 10),
       {"Los Angeles", "Singapore", "Amsterdam", "Miami", "Seoul"}},
      {'F', netsim::IpAddr::v4(192, 5, 5, 241),
       {"San Jose", "Paris", "Hong Kong", "Sao Paulo", "Johannesburg"}},
      {'J', netsim::IpAddr::v4(192, 58, 128, 30),
       {"Ashburn", "Stockholm", "Mumbai", "Toronto", "Dubai"}},
      {'L', netsim::IpAddr::v4(199, 7, 83, 42),
       {"Chicago", "Zurich", "Osaka", "Buenos Aires", "Warsaw"}},
  }};
  for (const auto& spec : kRoots) {
    for (const auto city : spec.sites) {
      auto& h = new_host(util::format("%c-root-%.*s", spec.letter,
                                      static_cast<int>(city.size()), city.data()));
      h.add_interface("eth0", spec.addr, std::nullopt);
      h.capture().set_enabled(false);
      network_->attach_host(h, router_for_city(city), 0.3);
    }
    roots_.push_back(RootServer{spec.letter, spec.addr});
  }
}

void World::publish_dns(const std::string& hostname, const netsim::IpAddr& a,
                        std::optional<netsim::IpAddr> aaaa) {
  dns::ZoneRecord rec;
  rec.a = {a};
  if (aaaa) rec.aaaa = {*aaaa};
  web_authority_->add_record(hostname, rec);
  zones_->set_authority(http::registered_domain(hostname), web_authority_addr_);
}

void World::build_web() {
  ca_store_.trust("SimTrust Root CA");
  ca_store_.trust("GlobalCert Root");

  // Web hosting uses datacenters near the site's declared hosting city,
  // falling back to Ashburn.
  const auto dc_for_city = [&](std::string_view city) -> Datacenter& {
    for (auto& dc : datacenters_)
      if (dc.city.name == city && !dc.known_vpn_hosting) return dc;
    for (auto& dc : datacenters_)
      if (dc.city.name == city) return dc;
    return *datacenter_by_id("stratalayer-ash");
  };

  const auto deploy_site = [&](const SiteSpec& spec) {
    auto& dc = dc_for_city(spec.hosting_city);
    auto& host = spawn_server(
        dc, "www." + std::string(spec.hostname), /*with_v6=*/true);
    const auto addr4 = *host.primary_addr(netsim::IpFamily::kV4);
    const auto addr6 = host.primary_addr(netsim::IpFamily::kV6);

    auto site = std::make_shared<http::Site>();
    site->hostname = std::string(spec.hostname);
    site->https_available = spec.https_available;
    site->upgrades_to_https = spec.upgrades_to_https;
    site->blocks_with_empty_200 = spec.blocks_with_empty_200;
    site->pages["/"] = http::make_basic_page(spec.hostname, spec.hostname,
                                             spec.resource_count);
    for (int i = 0; i < spec.resource_count; ++i) {
      http::Page res;
      res.html = util::format("// resource %d of %s", i,
                              std::string(spec.hostname).c_str());
      site->pages[util::format("/static/res%d.js", i)] = res;
    }

    auto web80 = std::make_shared<http::WebServerService>(false);
    web80->add_site(site);
    host.bind_service(netsim::Proto::kTcp, netsim::kPortHttp, web80);

    if (spec.https_available) {
      auto web443 = std::make_shared<http::WebServerService>(true);
      web443->add_site(site);
      auto term = std::make_shared<tlssim::TlsTerminator>(web443);
      term->set_chain(std::string(spec.hostname),
                      tlssim::issue_chain(spec.hostname, "SimTrust Root CA",
                                          cert_serial_++));
      host.bind_service(netsim::Proto::kTcp, netsim::kPortHttps, term);
      terminators_.push_back(term);
    }

    publish_dns(std::string(spec.hostname), addr4, addr6);
    site_directory_->set_category(std::string(spec.hostname), spec.category);
    all_sites_.push_back(site);
    if (spec.blocks_vpn_ranges) vpn_blocking_sites_.push_back(site);
  };

  for (const auto& spec : dom_test_sites()) deploy_site(spec);
  for (const auto& spec : tls_scan_sites()) deploy_site(spec);

  // Honeysites: static content, infra category, never censored.
  const auto deploy_honeysite = [&](std::string_view hostname, bool with_ads) {
    auto& dc = *datacenter_by_id("nodespark-chi");
    auto& host = spawn_server(dc, "www." + std::string(hostname));
    auto site = std::make_shared<http::Site>();
    site->hostname = std::string(hostname);
    site->https_available = false;
    site->pages["/"] = http::make_honeysite_page(hostname, with_ads);
    auto web80 = std::make_shared<http::WebServerService>(false);
    web80->add_site(site);
    host.bind_service(netsim::Proto::kTcp, netsim::kPortHttp, web80);
    publish_dns(std::string(hostname),
                *host.primary_addr(netsim::IpFamily::kV4));
    site_directory_->set_category(std::string(hostname),
                                  SiteCategory::kInfrastructure);
    all_sites_.push_back(site);
  };
  deploy_honeysite(honeysite_plain(), false);
  deploy_honeysite(honeysite_ads(), true);

  // The ad network referenced by the honeysite's ad slot must exist, so the
  // loader's fetch of the (invalid-publisher) ad script gets a benign 200.
  {
    auto& dc = *datacenter_by_id("edgeprime-sjc");
    auto& host = spawn_server(dc, "ads.adnet-one.com");
    auto site = std::make_shared<http::Site>();
    site->hostname = "ads.adnet-one.com";
    http::Page noop;
    noop.html = "// invalid publisher; slot intentionally unfilled";
    site->pages["/serve.js?pub=invalid-0000"] = noop;
    auto web80 = std::make_shared<http::WebServerService>(false);
    web80->add_site(site);
    host.bind_service(netsim::Proto::kTcp, netsim::kPortHttp, web80);
    publish_dns("ads.adnet-one.com", *host.primary_addr(netsim::IpFamily::kV4));
    site_directory_->set_category("ads.adnet-one.com",
                                  SiteCategory::kInfrastructure);
    all_sites_.push_back(site);
  }

  // Header reflection endpoint.
  {
    auto& dc = *datacenter_by_id("stratalayer-ash");
    auto& host = spawn_server(dc, std::string(header_echo_host()));
    host.bind_service(netsim::Proto::kTcp, netsim::kPortHttp,
                      std::make_shared<http::HeaderEchoService>());
    publish_dns(std::string(header_echo_host()),
                *host.primary_addr(netsim::IpFamily::kV4));
    site_directory_->set_category(std::string(header_echo_host()),
                                  SiteCategory::kInfrastructure);
  }

  // Geolocation API endpoint: answers with its belief about the requester's
  // address, via the google-like database (bound lazily because the
  // databases are constructed after build_web runs).
  {
    auto& dc = *datacenter_by_id("edgeprime-sjc");
    auto& host = spawn_server(dc, std::string(geo_api_host()));
    auto service = std::make_shared<netsim::LambdaService>(
        [this](netsim::ServiceContext& ctx) -> std::optional<std::string> {
          const auto req = http::HttpRequest::decode(ctx.request.payload);
          http::HttpResponse resp;
          if (!req) {
            resp.status = 400;
            resp.reason = "Bad Request";
            return resp.encode();
          }
          resp.status = 200;
          resp.reason = "OK";
          resp.set_header("Content-Type", "application/json");
          const auto rec = db_google_->lookup(ctx.request.src);
          if (rec) {
            resp.body = util::format(
                "{\"country\":\"%s\",\"city\":\"%s\",\"lat\":%.2f,\"lon\":%.2f}",
                rec->country_code.c_str(), rec->city.c_str(),
                rec->location.lat_deg, rec->location.lon_deg);
          } else {
            resp.body = "{\"error\":\"not found\"}";
          }
          return resp.encode();
        });
    host.bind_service(netsim::Proto::kTcp, netsim::kPortHttp, service);
    publish_dns(std::string(geo_api_host()),
                *host.primary_addr(netsim::IpFamily::kV4));
    site_directory_->set_category(std::string(geo_api_host()),
                                  SiteCategory::kInfrastructure);
  }

  // STUN-style reflector: answers a binding request with the source
  // address it observed — the building block of the WebRTC leak audit.
  {
    auto& dc = *datacenter_by_id("stratalayer-ash");
    auto& host = spawn_server(dc, std::string(stun_host()));
    host.bind_service(
        netsim::Proto::kUdp, kPortStun,
        std::make_shared<netsim::LambdaService>(
            [](netsim::ServiceContext& ctx) -> std::optional<std::string> {
              if (ctx.request.payload != "STUN-BINDING") return std::nullopt;
              return "MAPPED|" + ctx.request.src.str();
            }));
    publish_dns(std::string(stun_host()),
                *host.primary_addr(netsim::IpFamily::kV4));
    site_directory_->set_category(std::string(stun_host()),
                                  SiteCategory::kInfrastructure);
  }

  // National block pages referenced by the censors (Table 4 targets).
  struct BlockPage {
    std::string_view host_or_ip;
    std::string_view dc_id;
    bool is_literal;
  };
  const std::array<BlockPage, 11> kBlockPages = {{
      {"195.175.254.2", "anatolia-ist", true},
      {"www.warning.or.kr", "hanriver-sel", false},
      {"fz139.ttk.ru", "ttk-mow", false},
      {"zapret.hoztnode.net", "hzt-mow", false},
      {"warning.rt.ru", "rt-led", false},
      {"blocked.mts.ru", "mts-led", false},
      {"block.dtln.ru", "dtln-nsk", false},
      {"blackhole.beeline.ru", "beeline-mow", false},
      {"www.ziggo.nl", "hosteu-ams", false},
      {"213.46.185.10", "upclink-ams", true},
      {"103.77.116.101", "siam-bkk", true},
  }};
  for (const auto& bp : kBlockPages) {
    auto& dc = *datacenter_by_id(bp.dc_id);
    auto& host = new_host("blockpage." + std::string(bp.host_or_ip));
    netsim::IpAddr addr;
    if (bp.is_literal) {
      addr = *netsim::IpAddr::parse(bp.host_or_ip);
    } else {
      addr = allocate_from(dc);
    }
    host.add_interface("eth0", addr, std::nullopt);
    host.routes().add(netsim::Route{
        netsim::Cidr(netsim::IpAddr::v4(0, 0, 0, 0), 0), "eth0", std::nullopt, 0});
    host.capture().set_enabled(false);
    network_->attach_host(host, dc.router, 0.25);

    auto site = std::make_shared<http::Site>();
    site->hostname = std::string(bp.host_or_ip);
    http::Page page;
    page.html = util::format(
        "<html><body><h1>Access to this resource is restricted</h1>"
        "<p>Served by %s</p></body></html>",
        std::string(bp.host_or_ip).c_str());
    site->pages["/"] = page;
    auto web = std::make_shared<http::WebServerService>(false);
    web->add_site(site);
    host.bind_service(netsim::Proto::kTcp, netsim::kPortHttp, web);
    // ziggo.nl's block page is served over HTTPS.
    if (bp.host_or_ip == "www.ziggo.nl") {
      auto web443 = std::make_shared<http::WebServerService>(true);
      web443->add_site(site);
      auto term = std::make_shared<tlssim::TlsTerminator>(web443);
      term->set_chain(std::string(bp.host_or_ip),
                      tlssim::issue_chain(bp.host_or_ip, "GlobalCert Root",
                                          cert_serial_++));
      host.bind_service(netsim::Proto::kTcp, netsim::kPortHttps, term);
      terminators_.push_back(term);
    }
    if (!bp.is_literal) publish_dns(std::string(bp.host_or_ip), addr);
    site_directory_->set_category(std::string(bp.host_or_ip),
                                  SiteCategory::kInfrastructure);
    all_sites_.push_back(site);
  }
}

const http::Page* World::page_for(std::string_view hostname,
                                  std::string_view path) const {
  for (const auto& site : all_sites_) {
    if (site->hostname != hostname) continue;
    const auto it = site->pages.find(std::string(path));
    if (it == site->pages.end()) return nullptr;
    return &it->second;
  }
  return nullptr;
}

std::optional<std::string> World::true_cert_fingerprint(
    std::string_view hostname) const {
  for (const auto& term : terminators_) {
    if (const auto* chain = term->chain_for(hostname)) {
      if (const auto* leaf = chain->leaf()) return leaf->key_fingerprint;
    }
  }
  return std::nullopt;
}

void World::blocklist_vpn_range(const netsim::Cidr& block) {
  for (const auto& site : vpn_blocking_sites_)
    site->blocked_ranges.push_back(block);
}

void World::build_anchors() {
  // 50 anchors spread across the city table (every other city).
  const auto all = geo::cities();
  std::uint8_t next = 10;
  for (std::size_t i = 0; i < all.size() && anchors_.size() < 50; i += 2) {
    const auto& c = all[i];
    auto& h = new_host("anchor-" + std::string(c.name));
    const auto addr = netsim::IpAddr::v4(193, 0, 14, next++);
    h.add_interface("eth0", addr, std::nullopt);
    h.capture().set_enabled(false);
    network_->attach_host(h, city_routers_[i], 0.4);
    anchors_.push_back(Anchor{std::string(c.name), c, addr});
  }
}

std::vector<std::string> World::self_check() {
  std::vector<std::string> problems;
  auto& probe = spawn_client("Chicago", "self-check-probe");
  probe.capture().set_enabled(false);

  // Every DOM-test site resolves and serves its root page.
  http::HttpClient browser(*network_, probe);
  for (const auto& site : dom_test_sites()) {
    const auto res = browser.fetch("http://" + std::string(site.hostname) + "/");
    if (!res.ok())
      problems.push_back("site unreachable: " + std::string(site.hostname));
  }

  // Anchors and root letters answer pings.
  for (const auto& anchor : anchors_) {
    if (!network_->ping(probe, anchor.addr))
      problems.push_back("anchor unreachable: " + anchor.name);
  }
  for (const auto& root : roots_) {
    if (!network_->ping(probe, root.addr))
      problems.push_back(std::string("root unreachable: ") + root.letter);
  }

  // The probe zone logs recursion origins.
  const auto before = probe_authority_->query_log().size();
  const auto lookup =
      dns::query(*network_, probe, google_dns(),
                 "selfcheck.rdns.probe-infra.net", dns::RrType::kA);
  if (!lookup.ok() || probe_authority_->query_log().size() != before + 1)
    problems.push_back("probe zone not logging recursion origins");

  // Censors are armed for the five countries.
  std::set<std::string> censored_countries;
  for (const auto& censor : censors_)
    censored_countries.insert(censor->policy().country_code);
  for (const char* cc : {"TR", "KR", "RU", "NL", "TH"}) {
    if (!censored_countries.contains(cc))
      problems.push_back(std::string("censor missing for ") + cc);
  }

  network_->detach_host(probe);
  return problems;
}

void World::build_censors() {
  using Cat = SiteCategory;
  struct CensorSpec {
    std::string_view dc_id;
    std::string_view operator_name;
    std::string_view country;
    std::string_view redirect;
    std::set<Cat> categories;
    std::set<std::string> hosts;
  };
  const std::vector<CensorSpec> kSpecs = {
      {"anatolia-ist", "TIB", "TR", "http://195.175.254.2",
       {Cat::kPornography, Cat::kFileSharing}, {"wikipedia.org"}},
      {"anatolia-ank", "TIB", "TR", "http://195.175.254.2",
       {Cat::kPornography, Cat::kFileSharing}, {"wikipedia.org"}},
      {"hanriver-sel", "KCSC", "KR", "http://www.warning.or.kr",
       {Cat::kPornography}, {}},
      {"ttk-mow", "TTK", "RU", "http://fz139.ttk.ru",
       {Cat::kPornography, Cat::kFileSharing}, {"jw.org", "linkedin.com"}},
      {"hzt-mow", "HoztNode", "RU", "http://zapret.hoztnode.net",
       {Cat::kPornography, Cat::kFileSharing}, {"jw.org", "linkedin.com"}},
      {"rt-led", "Rostelecom", "RU", "http://warning.rt.ru",
       {Cat::kPornography, Cat::kFileSharing}, {"jw.org", "linkedin.com"}},
      {"mts-led", "MTS", "RU", "http://blocked.mts.ru",
       {Cat::kPornography, Cat::kFileSharing}, {"jw.org", "linkedin.com"}},
      {"dtln-nsk", "DataLine", "RU", "http://block.dtln.ru",
       {Cat::kPornography, Cat::kFileSharing}, {"jw.org", "linkedin.com"}},
      {"beeline-mow", "Beeline", "RU", "http://blackhole.beeline.ru",
       {Cat::kPornography, Cat::kFileSharing}, {"jw.org", "linkedin.com"}},
      {"ziggonet-ams", "Ziggo", "NL", "https://www.ziggo.nl",
       {Cat::kFileSharing}, {}},
      {"upclink-ams", "UPC", "NL", "http://213.46.185.10",
       {Cat::kFileSharing}, {}},
      {"siam-bkk", "MICT", "TH", "http://103.77.116.101",
       {Cat::kPornography}, {}},
  };
  for (const auto& spec : kSpecs) {
    auto* dc = datacenter_by_id(spec.dc_id);
    if (dc == nullptr) throw std::logic_error("censor: unknown dc");
    CensorPolicy policy;
    policy.operator_name = std::string(spec.operator_name);
    policy.country_code = std::string(spec.country);
    policy.redirect_url = std::string(spec.redirect);
    policy.blocked_categories = spec.categories;
    policy.blocked_hosts = spec.hosts;
    auto censor =
        std::make_shared<CensorMiddlebox>(std::move(policy), site_directory_);
    network_->set_middlebox(dc->router, censor);
    censors_.push_back(std::move(censor));
  }
}

}  // namespace vpna::inet

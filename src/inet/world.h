// The simulated Internet: backbone topology over real cities, hosting
// datacenters with address pools and WHOIS/geo registrations, the public
// DNS ecosystem (anycast resolvers, roots, zone authorities, a logging
// probe zone), the measurement-target web, RIPE-Atlas-style anchors, and
// per-country censorship. Everything the paper's test suite touches that is
// not the VPN itself lives here.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/server.h"
#include "geo/cities.h"
#include "geo/geodb.h"
#include "http/server.h"
#include "inet/censor.h"
#include "inet/sites.h"
#include "inet/whois.h"
#include "netsim/network.h"
#include "tlssim/cert.h"
#include "tlssim/handshake.h"
#include "util/arena.h"
#include "util/clock.h"
#include "util/rng.h"

namespace vpna::inet {

// A hosting location: a provider's presence in one city, with an IPv4 pool
// (and optional IPv6) from which server addresses are allocated.
struct Datacenter {
  std::string id;                // "oceancompute-blr"
  std::string hosting_provider;  // "OceanCompute Ltd"
  geo::City city;
  netsim::Cidr pool4;
  std::optional<netsim::Cidr> pool6;
  std::uint32_t asn = 0;
  std::string registered_country;  // WHOIS country (usually == city country)
  netsim::RouterId router = 0;
  std::uint32_t next_host = 10;  // next free offset within pool4
  // True for pools widely known as VPN/hosting space (streaming sites
  // block these ranges).
  bool known_vpn_hosting = false;
  // Tenant isolation: in facilities with large pools each customer rents
  // its own /24 slice, so distinct tenants do not share blocks. Small
  // pools (/22 and tighter — the budget hosts of Table 5) have no room
  // for slices and allocate from shared space.
  std::map<std::string, std::pair<std::uint32_t, std::uint32_t>> tenant_slices;
  std::uint32_t next_slice = 1;  // /24 index within the pool (0 = infra)
};

struct Anchor {
  std::string name;
  geo::City city;
  netsim::IpAddr addr;
};

struct RootServer {
  char letter;  // 'D', 'E', 'F', 'J', 'L'
  netsim::IpAddr addr;
};

class World {
 public:
  // `shared_plane`, when given, must have been produced by another World's
  // network (any seed: the backbone + datacenter core is seed-independent)
  // and is adopted instead of recomputing all-pairs routes — this is how
  // campaign shards skip the per-shard Dijkstra sweep. Pass nullptr to
  // build the plane locally on first path query.
  explicit World(std::uint64_t seed,
                 std::shared_ptr<const netsim::RoutingPlane> shared_plane =
                     nullptr);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // --- fabric ---------------------------------------------------------------
  [[nodiscard]] netsim::Network& network() noexcept { return *network_; }
  [[nodiscard]] util::SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  // Router serving a city (throws for unknown city names).
  [[nodiscard]] netsim::RouterId router_for_city(std::string_view city) const;

  // --- hosting --------------------------------------------------------------
  [[nodiscard]] std::vector<Datacenter>& datacenters() noexcept {
    return datacenters_;
  }
  // Datacenters in a country, cheapest-first ordering is not modelled;
  // callers pick by index/rng.
  [[nodiscard]] std::vector<Datacenter*> datacenters_in(
      std::string_view country_code);
  [[nodiscard]] Datacenter* datacenter_by_id(std::string_view id);

  // A tenant-private facility: a dedicated /24 rented by `tenant` in
  // `city`, created on first use and cached. This is how most vantage
  // points are hosted in practice — which is why the paper's census sees
  // hundreds of distinct CIDRs, with sharing concentrated in a handful of
  // budget facilities.
  Datacenter& private_datacenter(std::string_view tenant,
                                 std::string_view city);

  // Creates a server host in a datacenter: allocates an address from the
  // pool, attaches it at the datacenter's router, installs a default route.
  // `tenant` selects the addressing policy: non-empty tenants in large
  // pools receive addresses inside their own /24 slice; small pools and
  // anonymous spawns allocate from shared space.
  netsim::Host& spawn_server(Datacenter& dc, std::string name,
                             bool with_v6 = false, std::string_view tenant = {});

  // Creates an eyeball client behind a residential access network in a
  // city, with IPv4+IPv6, default routes and the ISP's resolver configured.
  netsim::Host& spawn_client(std::string_view city, std::string name);

  // Capacity hint: a caller that knows how many hosts it is about to spawn
  // (shard builds and the scaled generator do) pre-sizes the host arena and
  // the network's attachment indexes in one step.
  void reserve_hosts(std::size_t extra_hosts);
  [[nodiscard]] std::size_t host_count() const noexcept { return host_count_; }
  // Arena bytes backing host objects (reserved from the system / handed out).
  [[nodiscard]] std::size_t host_arena_reserved_bytes() const noexcept {
    return host_arena_.bytes_reserved();
  }
  [[nodiscard]] std::size_t host_arena_used_bytes() const noexcept {
    return host_arena_.bytes_allocated();
  }

  // --- addressing / registries ---------------------------------------------
  [[nodiscard]] WhoisDb& whois() noexcept { return whois_; }
  [[nodiscard]] std::shared_ptr<geo::AllocationRegistry> geo_registry() {
    return geo_registry_;
  }
  // Registers a sub-block's geo data, optionally spoofing the registered
  // location (virtual vantage points do this).
  void register_geo(const netsim::Cidr& block, const geo::City& true_city,
                    const geo::City& registered_city);

  // The three geolocation databases built over this world's registry.
  [[nodiscard]] const geo::GeoIpDatabase& db_maxmind() const { return *db_maxmind_; }
  [[nodiscard]] const geo::GeoIpDatabase& db_ip2location() const {
    return *db_ip2location_;
  }
  [[nodiscard]] const geo::GeoIpDatabase& db_google() const { return *db_google_; }

  // --- DNS -------------------------------------------------------------------
  [[nodiscard]] netsim::IpAddr google_dns() const { return google_dns_; }
  [[nodiscard]] netsim::IpAddr quad9_dns() const { return quad9_dns_; }
  [[nodiscard]] netsim::IpAddr isp_resolver() const { return isp_resolver_; }
  [[nodiscard]] std::span<const RootServer> root_servers() const {
    return roots_;
  }
  [[nodiscard]] std::shared_ptr<dns::ZoneRegistry> zones() { return zones_; }
  // The logging authoritative server under probe_dns_zone().
  [[nodiscard]] dns::AuthoritativeService& probe_authority() {
    return *probe_authority_;
  }
  // Adds records for a new hostname into the simulated DNS (server hosts
  // call this when they come up).
  void publish_dns(const std::string& hostname, const netsim::IpAddr& a,
                   std::optional<netsim::IpAddr> aaaa = std::nullopt);

  // --- web -------------------------------------------------------------------
  [[nodiscard]] tlssim::CaStore& ca_store() noexcept { return ca_store_; }
  [[nodiscard]] std::shared_ptr<const SiteDirectory> site_directory() const {
    return site_directory_;
  }
  // Ground-truth content: the page originally published for a hostname.
  [[nodiscard]] const http::Page* page_for(std::string_view hostname,
                                           std::string_view path = "/") const;
  // Ground-truth certificate fingerprint for a hostname.
  [[nodiscard]] std::optional<std::string> true_cert_fingerprint(
      std::string_view hostname) const;

  // Marks a CIDR as known-VPN space: streaming-style sites begin blocking
  // it (reproduces §6.1.2's 403 behaviour).
  void blocklist_vpn_range(const netsim::Cidr& block);

  // --- measurement endpoints ---------------------------------------------------
  [[nodiscard]] std::span<const Anchor> anchors() const { return anchors_; }

  // Verifies the world's structural invariants (every test site resolvable
  // and serving, anchors and roots pingable, probe zone logging, censors
  // armed). Returns a list of problems; empty means healthy. Examples and
  // long campaigns call this before trusting a freshly built world.
  [[nodiscard]] std::vector<std::string> self_check();

  // Reverse DNS for backbone and datacenter-edge router addresses, in the
  // operator-style form "core1.<city-slug>.backbone.example" /
  // "edge.<city-slug>.<facility>.example". Traceroute-based geolocation
  // (§5.3.2) keys off these hostnames, as it does in the real Internet.
  [[nodiscard]] std::optional<std::string> reverse_dns(
      const netsim::IpAddr& router_addr) const;

  // --- censors ------------------------------------------------------------------
  [[nodiscard]] const std::vector<std::shared_ptr<CensorMiddlebox>>& censors()
      const {
    return censors_;
  }

 private:
  void build_backbone();
  void build_datacenters();
  void build_dns();
  void build_web();
  void build_anchors();
  void build_censors();

  netsim::Host& new_host(std::string name);
  netsim::IpAddr allocate_from(Datacenter& dc);

  std::uint64_t seed_;
  util::SimClock clock_;
  util::Rng rng_;
  std::unique_ptr<netsim::Network> network_;

  // All hosts live in a bump arena owned by the world (one arena per shard):
  // creation is a pointer bump, locality follows build order, and teardown
  // releases whole blocks after running host destructors newest-first. Host
  // pointers remain stable for the world's lifetime, exactly as the old
  // vector<unique_ptr<Host>> storage guaranteed. Declared after network_ so
  // hosts are destroyed before the network that references them, matching
  // the previous member order.
  util::Arena host_arena_;
  std::size_t host_count_ = 0;
  std::vector<netsim::RouterId> city_routers_;  // parallel to geo::cities()

  std::vector<Datacenter> datacenters_;
  WhoisDb whois_;
  std::shared_ptr<geo::AllocationRegistry> geo_registry_;
  std::unique_ptr<geo::GeoIpDatabase> db_maxmind_;
  std::unique_ptr<geo::GeoIpDatabase> db_ip2location_;
  std::unique_ptr<geo::GeoIpDatabase> db_google_;

  std::shared_ptr<dns::ZoneRegistry> zones_;
  netsim::IpAddr google_dns_;
  netsim::IpAddr quad9_dns_;
  netsim::IpAddr isp_resolver_;
  std::vector<RootServer> roots_;
  std::shared_ptr<dns::AuthoritativeService> web_authority_;  // all site zones
  netsim::IpAddr web_authority_addr_;
  std::shared_ptr<dns::AuthoritativeService> probe_authority_;

  tlssim::CaStore ca_store_;
  std::shared_ptr<SiteDirectory> site_directory_;
  // Sites and TLS terminators by hosting host, for truth lookups.
  std::vector<std::shared_ptr<http::Site>> all_sites_;
  std::vector<std::shared_ptr<tlssim::TlsTerminator>> terminators_;
  std::vector<std::shared_ptr<http::Site>> vpn_blocking_sites_;

  std::vector<Anchor> anchors_;
  std::vector<std::shared_ptr<CensorMiddlebox>> censors_;
  std::uint64_t cert_serial_ = 1;
  std::uint32_t next_client_ip_ = 10;  // within the residential pool
  std::uint32_t next_private_pool_ = 0;  // /24 index in 146.0.0.0/8
  // Private facilities are appended to datacenters_, which may reallocate;
  // cache by id string and re-find on use.
  std::map<std::string, std::string> private_dc_ids_;  // tenant:city -> dc id
};

}  // namespace vpna::inet

#include "inet/censor.h"

#include "http/message.h"

namespace vpna::inet {

std::string_view category_name(SiteCategory c) noexcept {
  switch (c) {
    case SiteCategory::kNews: return "news";
    case SiteCategory::kPolitics: return "politics";
    case SiteCategory::kPornography: return "pornography";
    case SiteCategory::kFileSharing: return "file-sharing";
    case SiteCategory::kGovernment: return "government";
    case SiteCategory::kDefense: return "defense";
    case SiteCategory::kStreaming: return "streaming";
    case SiteCategory::kShopping: return "shopping";
    case SiteCategory::kSocial: return "social";
    case SiteCategory::kTech: return "tech";
    case SiteCategory::kEncyclopedia: return "encyclopedia";
    case SiteCategory::kReligion: return "religion";
    case SiteCategory::kProfessional: return "professional";
    case SiteCategory::kInfrastructure: return "infrastructure";
  }
  return "unknown";
}

void SiteDirectory::set_category(std::string hostname, SiteCategory category) {
  categories_[std::move(hostname)] = category;
}

std::optional<SiteCategory> SiteDirectory::category_of(
    std::string_view hostname) const {
  const auto it = categories_.find(hostname);
  if (it == categories_.end()) return std::nullopt;
  return it->second;
}

CensorMiddlebox::CensorMiddlebox(CensorPolicy policy,
                                 std::shared_ptr<const SiteDirectory> directory)
    : policy_(std::move(policy)), directory_(std::move(directory)) {}

netsim::Middlebox::Verdict CensorMiddlebox::on_transit(
    netsim::Packet& packet) {
  // Only cleartext HTTP is inspectable.
  if (packet.proto != netsim::Proto::kTcp ||
      packet.dst_port != netsim::kPortHttp)
    return {};

  const auto req = http::HttpRequest::decode(packet.payload);
  if (!req) return {};

  bool blocked = policy_.blocked_hosts.contains(req->host);
  if (!blocked) {
    if (const auto category = directory_->category_of(req->host))
      blocked = policy_.blocked_categories.contains(*category);
  }
  if (!blocked) return {};

  ++redirects_;
  http::HttpResponse resp;
  resp.status = 302;
  resp.reason = "Found";
  resp.set_header("Location", policy_.redirect_url);
  resp.set_header("X-Blocked-By", policy_.operator_name);
  Verdict v;
  v.action = Action::kRespond;
  v.response_payload = resp.encode();
  return v;
}

}  // namespace vpna::inet

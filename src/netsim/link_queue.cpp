#include "netsim/link_queue.h"

namespace vpna::netsim {

bool LinkQueue::offer(std::uint64_t token, std::uint32_t bytes,
                      util::SimTime now) {
  if (occupancy_bytes_ + bytes > capacity_.queue_limit_bytes) {
    ++stats_.tail_drops;
    return false;
  }
  occupancy_bytes_ += bytes;
  Entry entry{token, bytes, now, false};
  if (capacity_.ecn_threshold < 1.0 &&
      static_cast<double>(occupancy_bytes_) >
          capacity_.ecn_threshold *
              static_cast<double>(capacity_.queue_limit_bytes)) {
    entry.ecn_marked = true;
    ++stats_.ecn_marks;
  }
  ++stats_.enqueued;
  if (occupancy_bytes_ > stats_.peak_occupancy_bytes)
    stats_.peak_occupancy_bytes = occupancy_bytes_;
  entries_.push_back(entry);
  return true;
}

LinkQueue::Entry LinkQueue::pop() {
  Entry entry = entries_.front();
  entries_.pop_front();
  occupancy_bytes_ -= entry.bytes;
  ++stats_.dequeued;
  return entry;
}

}  // namespace vpna::netsim

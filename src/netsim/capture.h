// Packet capture: a per-interface ring of timestamped, direction-tagged
// packet records, standing in for the libpcap captures the paper's test
// suite records on the hardware interface. The leakage tests scan these
// buffers for traffic that should have traversed the tunnel.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "netsim/packet.h"
#include "util/clock.h"

namespace vpna::netsim {

enum class Direction : std::uint8_t { kOut, kIn };

struct CaptureRecord {
  util::SimTime time;
  Direction direction = Direction::kOut;
  std::string interface_name;
  Packet packet;
};

// Append-only capture buffer. One per host; records carry the interface
// name so tests can filter to the hardware (non-VPN) interface.
//
// Capture can be disabled per host (`set_enabled(false)`): the measurement
// client records everything, while busy infrastructure hosts (web servers,
// resolvers, vantage points) keep capture off so a full campaign stays
// memory-bounded — exactly like only running tcpdump on the test machine.
class CaptureBuffer {
 public:
  // `interface_name` is only materialized into a std::string when the
  // buffer is enabled, so disabled hosts pay no allocation per packet (and
  // the disabled check inlines into the caller).
  void record(util::SimTime time, Direction dir,
              std::string_view interface_name, const Packet& packet) {
    if (!enabled_) return;
    record_impl(time, dir, interface_name, packet);
  }

  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  [[nodiscard]] const std::vector<CaptureRecord>& records() const noexcept {
    return records_;
  }

  // Records on a specific interface.
  [[nodiscard]] std::vector<CaptureRecord> on_interface(
      std::string_view interface_name) const;

  // Records matching a predicate.
  [[nodiscard]] std::vector<CaptureRecord> matching(
      const std::function<bool(const CaptureRecord&)>& pred) const;

  void clear() noexcept { records_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  // tcpdump-style text rendering of (up to max_lines of) the buffer:
  //   "12.345s eth0  OUT udp 71.80.0.10:49152 -> 8.8.8.8:53 len=20"
  [[nodiscard]] std::string dump(std::size_t max_lines = 200) const;

 private:
  void record_impl(util::SimTime time, Direction dir,
                   std::string_view interface_name, const Packet& packet);

  bool enabled_ = true;
  std::vector<CaptureRecord> records_;
};

}  // namespace vpna::netsim

// Host routing table: longest-prefix match over dual-family routes. This is
// what a VPN client manipulates when it connects (installing a default route
// through the tun device), and what the leakage tests ultimately audit.
//
// Lookup is served by a longest-prefix-match index: routes are bucketed by
// (family, prefix length) with each bucket keyed on the masked network
// address, and lookup probes buckets longest-first — so the per-packet cost
// scales with the number of distinct prefix lengths (a handful), not the
// number of routes. Tables at or below kLinearScanThreshold routes skip the
// index and scan directly (cheaper than hashing for the typical host
// table). The linear scan survives as `lookup_naive`, the oracle the
// randomized tests compare against.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/ip.h"

namespace vpna::netsim {

struct Route {
  Cidr prefix;                 // destination prefix
  std::string interface_name;  // egress interface ("eth0", "tun0", ...)
  std::optional<IpAddr> gateway;
  int metric = 0;  // lower wins among equal prefix lengths
};

class RouteTable {
 public:
  // Below this size lookup() scans linearly instead of probing the index.
  // The inlined prefix compare puts the scan near 1 ns/route, while each
  // bucket probe pays a hash + map find (~50 ns), so the crossover sits
  // around a couple hundred routes; see bench_routing.
  static constexpr std::size_t kLinearScanThreshold = 256;

  // Adds a route. Routes are not deduplicated; lookup prefers longest
  // prefix, then lowest metric, then insertion order.
  void add(Route route);

  // Removes all routes exactly matching the prefix + interface pair.
  // Returns the number removed.
  std::size_t remove(const Cidr& prefix, std::string_view interface_name);

  // Removes every route that egresses via the named interface.
  std::size_t remove_interface(std::string_view interface_name);

  // Longest-prefix-match lookup. Only routes whose family matches `dst`
  // are considered. Returns nullopt when no route covers dst (no implicit
  // default route).
  [[nodiscard]] std::optional<Route> lookup(const IpAddr& dst) const;

  // Reference implementation of lookup (linear best-match scan). Same
  // result as lookup() by construction; kept as the test oracle and the
  // bench baseline.
  [[nodiscard]] std::optional<Route> lookup_naive(const IpAddr& dst) const;

  [[nodiscard]] const std::vector<Route>& routes() const noexcept {
    return routes_;
  }

  // Human-readable dump, one route per line (used by the metadata
  // collection test, mirroring `netstat -rn`).
  [[nodiscard]] std::string dump() const;

 private:
  // One bucket per (family, prefix length) that has at least one route.
  // `nets` maps the masked network address to the indices (into routes_,
  // ascending = insertion order) of the routes with that exact prefix.
  struct Bucket {
    int prefix_len = 0;
    std::unordered_map<IpAddr, std::vector<std::uint32_t>> nets;
  };

  void index_route(std::uint32_t idx);
  void rebuild_index();
  [[nodiscard]] const std::vector<Bucket>& buckets_for(
      IpFamily family) const noexcept {
    return family == IpFamily::kV4 ? buckets4_ : buckets6_;
  }

  std::vector<Route> routes_;
  // Sorted descending by prefix_len so lookup probes longest-first.
  std::vector<Bucket> buckets4_;
  std::vector<Bucket> buckets6_;
};

}  // namespace vpna::netsim

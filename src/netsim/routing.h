// Host routing table: longest-prefix match over dual-family routes. This is
// what a VPN client manipulates when it connects (installing a default route
// through the tun device), and what the leakage tests ultimately audit.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netsim/ip.h"

namespace vpna::netsim {

struct Route {
  Cidr prefix;                 // destination prefix
  std::string interface_name;  // egress interface ("eth0", "tun0", ...)
  std::optional<IpAddr> gateway;
  int metric = 0;  // lower wins among equal prefix lengths
};

class RouteTable {
 public:
  // Adds a route. Routes are not deduplicated; lookup prefers longest
  // prefix, then lowest metric, then insertion order.
  void add(Route route);

  // Removes all routes exactly matching the prefix + interface pair.
  // Returns the number removed.
  std::size_t remove(const Cidr& prefix, std::string_view interface_name);

  // Removes every route that egresses via the named interface.
  std::size_t remove_interface(std::string_view interface_name);

  // Longest-prefix-match lookup. Only routes whose family matches `dst`
  // are considered. Returns nullopt when no route covers dst (no implicit
  // default route).
  [[nodiscard]] std::optional<Route> lookup(const IpAddr& dst) const;

  [[nodiscard]] const std::vector<Route>& routes() const noexcept {
    return routes_;
  }

  // Human-readable dump, one route per line (used by the metadata
  // collection test, mirroring `netstat -rn`).
  [[nodiscard]] std::string dump() const;

 private:
  std::vector<Route> routes_;
};

}  // namespace vpna::netsim

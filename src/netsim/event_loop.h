// Discrete-event scheduler for the capacity-aware traffic plane.
//
// The legacy transact path is synchronous: one exchange at a time, the
// whole round trip charged to the SimClock before the next begins. That
// cannot express many flows in flight concurrently — packets interleaving
// in link queues is exactly what congestion *is*. The EventLoop closes the
// gap: a single-threaded priority queue of (virtual-time, callback) events
// in microseconds, dispatched in strictly deterministic order.
//
// Determinism contract: events are dispatched ordered by (timestamp,
// schedule sequence). Two events scheduled for the same instant run in the
// order they were scheduled, never in heap order or pointer order — so a
// traffic simulation replays bit-identically at any worker count as long
// as its own scheduling decisions are deterministic (the traffic plane
// draws no randomness at all).
//
// Events reference an EventActor plus an opaque 64-bit tag instead of a
// std::function, keeping the per-event cost allocation-free: the heap
// stores flat PODs, and bench_traffic's ns/event number is the budget this
// design is held to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/clock.h"

namespace vpna::netsim {

class EventLoop;

// Receiver of scheduled events. The tag is whatever the actor packed at
// schedule time (the traffic plane packs a packet-pool index plus an event
// kind); the loop never interprets it.
class EventActor {
 public:
  virtual ~EventActor() = default;
  virtual void on_event(EventLoop& loop, std::uint64_t tag) = 0;
};

class EventLoop {
 public:
  explicit EventLoop(util::SimTime start = {}) noexcept : now_(start) {}

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Current virtual time: the timestamp of the event being dispatched (or
  // the start time before any ran). Never moves backwards.
  [[nodiscard]] util::SimTime now() const noexcept { return now_; }

  // Schedules `actor.on_event(*this, tag)` at virtual time `at`. Times in
  // the past are clamped to now() — the event still runs, after everything
  // already scheduled for now().
  void schedule_at(util::SimTime at, EventActor& actor, std::uint64_t tag = 0);
  void schedule_after(util::SimTime delay, EventActor& actor,
                      std::uint64_t tag = 0) {
    schedule_at(now_ + delay, actor, tag);
  }

  // Dispatches the earliest pending event. False when nothing is pending.
  bool run_one();
  // Dispatches until the queue drains; returns events dispatched.
  std::size_t run();
  // Dispatches every event with timestamp <= deadline, then advances now()
  // to the deadline; returns events dispatched.
  std::size_t run_until(util::SimTime deadline);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  // Total events dispatched over the loop's lifetime (bench denominator).
  [[nodiscard]] std::uint64_t dispatched() const noexcept {
    return dispatched_;
  }

 private:
  struct Event {
    std::int64_t at_us = 0;
    std::uint64_t seq = 0;  // tie-break: schedule order wins at equal time
    EventActor* actor = nullptr;
    std::uint64_t tag = 0;
  };
  // Min-heap order for std::push_heap/pop_heap (which build max-heaps).
  static bool later(const Event& a, const Event& b) noexcept {
    if (a.at_us != b.at_us) return a.at_us > b.at_us;
    return a.seq > b.seq;
  }

  std::vector<Event> heap_;
  util::SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace vpna::netsim

// IP addressing primitives: dual-family address type, CIDR prefixes, and
// parsing/formatting. These are value types used throughout the simulator;
// all the usual networking conventions (network byte order, longest-prefix
// semantics) apply.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace vpna::netsim {

enum class IpFamily : std::uint8_t { kV4, kV6 };

// An IPv4 or IPv6 address. IPv4 occupies the first 4 bytes of storage;
// comparisons never mix families (family is the major sort key).
class IpAddr {
 public:
  // Default: 0.0.0.0
  constexpr IpAddr() noexcept = default;

  // Constructs an IPv4 address from a host-order 32-bit value
  // (e.g. 0x08080808 == 8.8.8.8).
  static IpAddr v4(std::uint32_t host_order) noexcept;

  // Constructs an IPv4 address from dotted octets.
  static IpAddr v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                   std::uint8_t d) noexcept;

  // Constructs an IPv6 address from 16 bytes.
  static IpAddr v6(const std::array<std::uint8_t, 16>& bytes) noexcept;

  // Convenience IPv6 constructor from eight 16-bit groups.
  static IpAddr v6_groups(const std::array<std::uint16_t, 8>& groups) noexcept;

  // Parses "a.b.c.d" or RFC 4291 hex-groups form (with "::" compression).
  // Returns nullopt on malformed input.
  static std::optional<IpAddr> parse(std::string_view text);

  [[nodiscard]] IpFamily family() const noexcept { return family_; }
  [[nodiscard]] bool is_v4() const noexcept { return family_ == IpFamily::kV4; }
  [[nodiscard]] bool is_v6() const noexcept { return family_ == IpFamily::kV6; }
  [[nodiscard]] bool is_unspecified() const noexcept {
    for (auto b : bytes_)
      if (b != 0) return false;
    return true;
  }

  // IPv4 value in host order. Requires is_v4().
  [[nodiscard]] std::uint32_t v4_value() const;

  // Raw bytes (4 meaningful for v4, 16 for v6).
  [[nodiscard]] const std::array<std::uint8_t, 16>& bytes() const noexcept {
    return bytes_;
  }

  // Copy with every bit past `prefix_len` cleared — the enclosing network
  // address, same family. The LPM probe calls this per bucket, so it skips
  // the range validation Cidr's constructor does.
  [[nodiscard]] IpAddr masked(int prefix_len) const noexcept {
    IpAddr out = *this;
    int bits = prefix_len;
    for (auto& b : out.bytes_) {
      if (bits >= 8) {
        bits -= 8;
        continue;
      }
      b &= static_cast<std::uint8_t>(bits > 0 ? 0xff00u >> bits : 0);
      bits = 0;
    }
    return out;
  }

  // Canonical text form ("8.8.8.8", "2001:db8::1").
  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(const IpAddr&, const IpAddr&) noexcept = default;
  friend constexpr bool operator==(const IpAddr&, const IpAddr&) noexcept = default;

 private:
  IpFamily family_ = IpFamily::kV4;
  std::array<std::uint8_t, 16> bytes_{};
};

// A routing prefix: address + prefix length. For IPv4 the prefix length is
// in [0,32]; for IPv6 in [0,128]. The stored address is masked to the
// prefix on construction so equal prefixes compare equal.
class Cidr {
 public:
  constexpr Cidr() noexcept = default;
  Cidr(IpAddr addr, int prefix_len);

  // Parses "10.0.0.0/8" or "2001:db8::/32".
  static std::optional<Cidr> parse(std::string_view text);

  [[nodiscard]] const IpAddr& network() const noexcept { return network_; }
  [[nodiscard]] int prefix_len() const noexcept { return prefix_len_; }
  [[nodiscard]] IpFamily family() const noexcept { return network_.family(); }

  // True if `addr` is within this prefix (families must match). Compares
  // only the prefix bits — network_ is masked on construction, so this is
  // equivalent to masking `addr` and comparing whole addresses.
  [[nodiscard]] bool contains(const IpAddr& addr) const noexcept {
    if (addr.family() != network_.family()) return false;
    const auto& a = addr.bytes();
    const auto& n = network_.bytes();
    int bits = prefix_len_;
    std::size_t i = 0;
    for (; bits >= 8; bits -= 8, ++i)
      if (a[i] != n[i]) return false;
    if (bits > 0) {
      const auto mask = static_cast<std::uint8_t>(0xff00u >> bits);
      if ((a[i] & mask) != n[i]) return false;
    }
    return true;
  }

  // The n-th host address within the prefix (v4 only; n counts from the
  // network address). Requires the result to stay inside the prefix.
  [[nodiscard]] IpAddr host_at(std::uint32_t n) const;

  [[nodiscard]] std::string str() const;

  friend auto operator<=>(const Cidr&, const Cidr&) noexcept = default;
  friend bool operator==(const Cidr&, const Cidr&) noexcept = default;

 private:
  IpAddr network_{};
  int prefix_len_ = 0;
};

// Returns the enclosing /24 (v4) or /48 (v6) block of an address — the
// granularity the paper uses for "same IP block" infrastructure analysis.
[[nodiscard]] Cidr enclosing_block(const IpAddr& addr);

}  // namespace vpna::netsim

template <>
struct std::hash<vpna::netsim::IpAddr> {
  std::size_t operator()(const vpna::netsim::IpAddr& a) const noexcept {
    // FNV over family + bytes.
    std::size_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint8_t b) {
      h ^= b;
      h *= 1099511628211ULL;
    };
    mix(static_cast<std::uint8_t>(a.family()));
    for (auto b : a.bytes()) mix(b);
    return h;
  }
};

template <>
struct std::hash<vpna::netsim::Cidr> {
  std::size_t operator()(const vpna::netsim::Cidr& c) const noexcept {
    return std::hash<vpna::netsim::IpAddr>{}(c.network()) ^
           (static_cast<std::size_t>(c.prefix_len()) << 1);
  }
};

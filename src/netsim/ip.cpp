#include "netsim/ip.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "util/strings.h"

namespace vpna::netsim {

IpAddr IpAddr::v4(std::uint32_t host_order) noexcept {
  IpAddr a;
  a.family_ = IpFamily::kV4;
  a.bytes_[0] = static_cast<std::uint8_t>(host_order >> 24);
  a.bytes_[1] = static_cast<std::uint8_t>(host_order >> 16);
  a.bytes_[2] = static_cast<std::uint8_t>(host_order >> 8);
  a.bytes_[3] = static_cast<std::uint8_t>(host_order);
  return a;
}

IpAddr IpAddr::v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                  std::uint8_t d) noexcept {
  return v4((static_cast<std::uint32_t>(a) << 24) |
            (static_cast<std::uint32_t>(b) << 16) |
            (static_cast<std::uint32_t>(c) << 8) | d);
}

IpAddr IpAddr::v6(const std::array<std::uint8_t, 16>& bytes) noexcept {
  IpAddr a;
  a.family_ = IpFamily::kV6;
  a.bytes_ = bytes;
  return a;
}

IpAddr IpAddr::v6_groups(const std::array<std::uint16_t, 8>& groups) noexcept {
  std::array<std::uint8_t, 16> b{};
  for (std::size_t i = 0; i < 8; ++i) {
    b[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    b[2 * i + 1] = static_cast<std::uint8_t>(groups[i]);
  }
  return v6(b);
}

std::uint32_t IpAddr::v4_value() const {
  if (!is_v4()) throw std::logic_error("v4_value on IPv6 address");
  return (static_cast<std::uint32_t>(bytes_[0]) << 24) |
         (static_cast<std::uint32_t>(bytes_[1]) << 16) |
         (static_cast<std::uint32_t>(bytes_[2]) << 8) | bytes_[3];
}

namespace {

std::optional<IpAddr> parse_v4(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::array<std::uint8_t, 4> oct{};
  for (std::size_t i = 0; i < 4; ++i) {
    if (parts[i].empty() || parts[i].size() > 3) return std::nullopt;
    unsigned value = 0;
    const auto* first = parts[i].data();
    const auto* last = first + parts[i].size();
    auto [p, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || p != last || value > 255) return std::nullopt;
    oct[i] = static_cast<std::uint8_t>(value);
  }
  return IpAddr::v4(oct[0], oct[1], oct[2], oct[3]);
}

std::optional<std::uint16_t> parse_group(std::string_view g) {
  if (g.empty() || g.size() > 4) return std::nullopt;
  unsigned value = 0;
  auto [p, ec] = std::from_chars(g.data(), g.data() + g.size(), value, 16);
  if (ec != std::errc{} || p != g.data() + g.size() || value > 0xffff)
    return std::nullopt;
  return static_cast<std::uint16_t>(value);
}

std::optional<IpAddr> parse_v6(std::string_view text) {
  // Handles "::" compression; does not handle embedded IPv4 tails, which the
  // simulator never produces.
  const std::size_t dcolon = text.find("::");
  std::vector<std::uint16_t> head, tail;
  auto parse_side = [](std::string_view side,
                       std::vector<std::uint16_t>& out) -> bool {
    if (side.empty()) return true;
    for (const auto& g : util::split(side, ':')) {
      const auto v = parse_group(g);
      if (!v) return false;
      out.push_back(*v);
    }
    return true;
  };
  if (dcolon == std::string_view::npos) {
    if (!parse_side(text, head) || head.size() != 8) return std::nullopt;
  } else {
    if (text.find("::", dcolon + 1) != std::string_view::npos)
      return std::nullopt;  // at most one "::"
    if (!parse_side(text.substr(0, dcolon), head)) return std::nullopt;
    if (!parse_side(text.substr(dcolon + 2), tail)) return std::nullopt;
    if (head.size() + tail.size() >= 8) return std::nullopt;
  }
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i)
    groups[8 - tail.size() + i] = tail[i];
  return IpAddr::v6_groups(groups);
}

}  // namespace

std::optional<IpAddr> IpAddr::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

std::string IpAddr::str() const {
  char buf[64];
  if (is_v4()) {
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bytes_[0], bytes_[1],
                  bytes_[2], bytes_[3]);
    return buf;
  }
  // RFC 5952-style: compress the longest run of zero groups.
  std::array<std::uint16_t, 8> g{};
  for (std::size_t i = 0; i < 8; ++i)
    g[i] = static_cast<std::uint16_t>((bytes_[2 * i] << 8) | bytes_[2 * i + 1]);
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (g[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && g[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  std::string out;
  if (best_len < 2) best_start = -1;  // only compress runs of 2+
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      // The compressed run always renders as "::"; the preceding group
      // deliberately did not emit its trailing ':'.
      out += "::";
      i += best_len;
      if (i >= 8) break;
      continue;
    }
    char hex[8];
    std::snprintf(hex, sizeof(hex), "%x", g[static_cast<std::size_t>(i)]);
    out += hex;
    ++i;
    if (i < 8 && i != best_start) out += ':';
  }
  if (out.empty()) out = "::";
  return out;
}

namespace {

std::array<std::uint8_t, 16> mask_bytes(const std::array<std::uint8_t, 16>& in,
                                        int prefix_len) {
  std::array<std::uint8_t, 16> out{};
  int bits = prefix_len;
  for (std::size_t i = 0; i < 16 && bits > 0; ++i) {
    if (bits >= 8) {
      out[i] = in[i];
      bits -= 8;
    } else {
      out[i] = static_cast<std::uint8_t>(in[i] & (0xff << (8 - bits)));
      bits = 0;
    }
  }
  return out;
}

}  // namespace

Cidr::Cidr(IpAddr addr, int prefix_len) : prefix_len_(prefix_len) {
  const int max = addr.is_v4() ? 32 : 128;
  if (prefix_len < 0 || prefix_len > max)
    throw std::invalid_argument("Cidr: prefix length out of range");
  if (addr.is_v4()) {
    // Mask within the first 4 bytes.
    auto b = addr.bytes();
    auto masked = mask_bytes(b, prefix_len);
    network_ = IpAddr::v4(masked[0], masked[1], masked[2], masked[3]);
  } else {
    network_ = IpAddr::v6(mask_bytes(addr.bytes(), prefix_len));
  }
}

std::optional<Cidr> Cidr::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IpAddr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const auto plen_text = text.substr(slash + 1);
  int plen = 0;
  auto [p, ec] =
      std::from_chars(plen_text.data(), plen_text.data() + plen_text.size(), plen);
  if (ec != std::errc{} || p != plen_text.data() + plen_text.size())
    return std::nullopt;
  const int max = addr->is_v4() ? 32 : 128;
  if (plen < 0 || plen > max) return std::nullopt;
  return Cidr(*addr, plen);
}

IpAddr Cidr::host_at(std::uint32_t n) const {
  if (!network_.is_v4())
    throw std::logic_error("host_at only supported for IPv4 prefixes");
  const std::uint64_t size = prefix_len_ >= 32
                                 ? 1ULL
                                 : (1ULL << (32 - prefix_len_));
  if (n >= size) throw std::out_of_range("host_at: index outside prefix");
  return IpAddr::v4(network_.v4_value() + n);
}

std::string Cidr::str() const {
  return network_.str() + "/" + std::to_string(prefix_len_);
}

Cidr enclosing_block(const IpAddr& addr) {
  return Cidr(addr, addr.is_v4() ? 24 : 48);
}

}  // namespace vpna::netsim

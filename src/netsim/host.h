// A simulated end host: named interfaces with IPv4/IPv6 addresses, a routing
// table, a firewall, OS DNS-resolver configuration, bound services, and a
// packet-capture buffer. VPN clients manipulate exactly this state (routes,
// DNS servers, tun interface, firewall rules), and the measurement suite
// audits it — mirroring how the paper's tests observe a macOS VM.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netsim/capture.h"
#include "netsim/firewall.h"
#include "netsim/packet.h"
#include "netsim/routing.h"

namespace vpna::netsim {

class Host;
class Network;

// Context handed to a service handler. Services that forward traffic (the
// VPN server's tunnel endpoint, proxies) use `network` to issue their own
// transactions synchronously.
struct ServiceContext {
  Network& network;
  Host& host;          // the host the service is bound on
  const Packet& request;
};

// A protocol endpoint bound to (proto, port) on a host. Returning nullopt
// means "no response" (the caller observes a timeout).
class Service {
 public:
  virtual ~Service() = default;
  virtual std::optional<std::string> handle(ServiceContext& ctx) = 0;
};

// Adapter for lambda services.
class LambdaService final : public Service {
 public:
  using Fn = std::function<std::optional<std::string>(ServiceContext&)>;
  explicit LambdaService(Fn fn) : fn_(std::move(fn)) {}
  std::optional<std::string> handle(ServiceContext& ctx) override {
    return fn_(ctx);
  }

 private:
  Fn fn_;
};

struct Interface {
  std::string name;
  std::optional<IpAddr> addr4;
  std::optional<IpAddr> addr6;
  bool up = true;
};

// Hook invoked when a packet is routed out through an interface that has a
// tunnel attached (the VPN client data path). The hook either returns the
// encapsulated outer packet to send via the physical interface, or nullopt
// to drop the packet (e.g. tunnel down and failing closed).
using TunnelEncapHook = std::function<std::optional<Packet>(const Packet& inner)>;

class Host {
 public:
  // Creates a host with a loopback interface only; add interfaces before
  // attaching to a network.
  explicit Host(std::string name);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // --- interfaces ---------------------------------------------------------
  Interface& add_interface(std::string name, std::optional<IpAddr> addr4,
                           std::optional<IpAddr> addr6 = std::nullopt);
  void remove_interface(std::string_view name);
  [[nodiscard]] Interface* find_interface(std::string_view name) noexcept;
  [[nodiscard]] const Interface* find_interface(std::string_view name) const noexcept;
  [[nodiscard]] const std::vector<Interface>& interfaces() const noexcept {
    return interfaces_;
  }

  // First global address of the given family across all up interfaces.
  [[nodiscard]] std::optional<IpAddr> primary_addr(IpFamily family) const;

  // --- routing / firewall / DNS -------------------------------------------
  [[nodiscard]] RouteTable& routes() noexcept { return routes_; }
  [[nodiscard]] const RouteTable& routes() const noexcept { return routes_; }
  [[nodiscard]] Firewall& firewall() noexcept { return firewall_; }
  [[nodiscard]] const Firewall& firewall() const noexcept { return firewall_; }

  [[nodiscard]] std::vector<IpAddr>& dns_servers() noexcept {
    return dns_servers_;
  }
  [[nodiscard]] const std::vector<IpAddr>& dns_servers() const noexcept {
    return dns_servers_;
  }

  // --- services ------------------------------------------------------------
  // Binds a service to (proto, port); replaces any existing binding.
  void bind_service(Proto proto, std::uint16_t port,
                    std::shared_ptr<Service> service);
  void unbind_service(Proto proto, std::uint16_t port);
  [[nodiscard]] Service* find_service(Proto proto, std::uint16_t port) const;
  [[nodiscard]] std::size_t service_count() const noexcept {
    return services_.size();
  }

  // --- tunnel hook -----------------------------------------------------------
  // Attaches/detaches the encapsulation hook for a tun interface.
  void set_tunnel_hook(std::string tun_interface, TunnelEncapHook hook);
  void clear_tunnel_hook() noexcept;
  [[nodiscard]] bool has_tunnel_hook() const noexcept {
    return static_cast<bool>(tunnel_hook_);
  }
  [[nodiscard]] const std::string& tunnel_interface() const noexcept {
    return tunnel_interface_;
  }
  [[nodiscard]] const TunnelEncapHook& tunnel_hook() const noexcept {
    return tunnel_hook_;
  }

  // --- capture --------------------------------------------------------------
  [[nodiscard]] CaptureBuffer& capture() noexcept { return capture_; }
  [[nodiscard]] const CaptureBuffer& capture() const noexcept {
    return capture_;
  }

  // Next ephemeral source port (wraps within the dynamic range).
  [[nodiscard]] std::uint16_t next_ephemeral_port() noexcept;

 private:
  // Service bindings as a flat vector sorted by packed (proto, port) key —
  // hosts bind a handful of services, so a cache-line binary search beats a
  // node-based map on every delivered packet, and per-host service storage
  // is one contiguous allocation instead of a node per binding.
  struct ServiceBinding {
    std::uint32_t key;  // (proto << 16) | port
    std::shared_ptr<Service> service;
  };
  static constexpr std::uint32_t service_key(Proto proto,
                                             std::uint16_t port) noexcept {
    return (static_cast<std::uint32_t>(proto) << 16) | port;
  }

  std::string name_;
  std::vector<Interface> interfaces_;
  RouteTable routes_;
  Firewall firewall_;
  std::vector<IpAddr> dns_servers_;
  std::vector<ServiceBinding> services_;
  std::string tunnel_interface_;
  TunnelEncapHook tunnel_hook_;
  CaptureBuffer capture_;
  std::uint16_t ephemeral_ = 49152;
};

}  // namespace vpna::netsim

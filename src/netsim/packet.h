// The simulator's packet model. A Packet is a flat value type carrying the
// fields the measurement tests actually observe: addresses, protocol, ports,
// TTL and an opaque payload. Encapsulation (VPN tunnels) is modelled by
// serializing an inner packet into the payload of an outer one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netsim/ip.h"

namespace vpna::netsim {

enum class Proto : std::uint8_t {
  kUdp,
  kTcp,
  kIcmpEcho,
  kIcmpEchoReply,
  kIcmpTimeExceeded,
};

[[nodiscard]] std::string_view proto_name(Proto p) noexcept;

struct Packet {
  IpAddr src;
  IpAddr dst;
  Proto proto = Proto::kUdp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  int ttl = 64;
  std::string payload;

  [[nodiscard]] IpFamily family() const noexcept { return dst.family(); }

  // One-line rendering for capture dumps and test diagnostics.
  [[nodiscard]] std::string summary() const;
};

// Tunnel encapsulation: serializes an inner packet into a payload that
// decode_inner() round-trips exactly. The format is an internal detail of
// the simulator (a tagged, length-prefixed text encoding), standing in for
// the ESP/OpenVPN framing a real tunnel would use.
[[nodiscard]] std::string encode_inner(const Packet& inner);
[[nodiscard]] std::optional<Packet> decode_inner(std::string_view payload);

// Well-known simulator port numbers.
inline constexpr std::uint16_t kPortDns = 53;
inline constexpr std::uint16_t kPortHttp = 80;
inline constexpr std::uint16_t kPortHttps = 443;
inline constexpr std::uint16_t kPortOpenVpn = 1194;
inline constexpr std::uint16_t kPortPptp = 1723;
inline constexpr std::uint16_t kPortIpsec = 500;
inline constexpr std::uint16_t kPortSstp = 4433;
inline constexpr std::uint16_t kPortSpeedTest = 5201;  // iperf3's default

}  // namespace vpna::netsim

// A small stateless packet filter attached to each host. Two of the paper's
// experiments depend on it: the tunnel-failure test induces failure by
// blocking outbound traffic to the VPN server, and fail-closed VPN clients
// install block-everything rules when the tunnel drops.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netsim/capture.h"
#include "netsim/packet.h"

namespace vpna::netsim {

enum class FwAction : std::uint8_t { kAllow, kDeny };

// A rule matches when every specified (non-nullopt) field matches the
// packet. Rules are evaluated in order; first match wins; default allow.
struct FwRule {
  FwAction action = FwAction::kDeny;
  std::optional<Direction> direction;       // out/in; nullopt = both
  std::optional<IpAddr> remote_addr;        // dst for out, src for in
  std::optional<Cidr> remote_prefix;        // alternative to exact addr
  std::optional<Proto> proto;
  std::optional<std::uint16_t> remote_port;  // dst port for out, src for in
  std::optional<IpFamily> family;
  std::string label;  // diagnostic tag ("induced-failure", "killswitch", ...)
};

class Firewall {
 public:
  // Appends a rule (evaluated after existing rules).
  void add_rule(FwRule rule);

  // Removes all rules carrying `label`; returns count removed.
  std::size_t remove_label(std::string_view label);

  // First-match evaluation; returns kAllow if nothing matches.
  [[nodiscard]] FwAction evaluate(const Packet& packet,
                                  Direction direction) const noexcept;

  [[nodiscard]] bool allows(const Packet& packet,
                            Direction direction) const noexcept {
    // No rules — the default-allow answer, without the call (most hosts in
    // a campaign never install a rule; this sits on the per-packet path).
    if (rules_.empty()) return true;
    return evaluate(packet, direction) == FwAction::kAllow;
  }

  [[nodiscard]] const std::vector<FwRule>& rules() const noexcept {
    return rules_;
  }
  void clear() noexcept { rules_.clear(); }

 private:
  std::vector<FwRule> rules_;
};

}  // namespace vpna::netsim

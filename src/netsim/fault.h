// Fault-injection seam for the packet plane.
//
// netsim stays policy-free: it only knows how to consult an abstract
// injector once per direct delivery, after the path is resolved and before
// any latency is charged. What faults exist, when they fire and how they
// are scheduled is the `faults` module's business (src/faults/), which
// implements this interface against a seeded, sim-time fault plan. The
// disabled case (no injector installed — every run before this PR, and
// every run with `FaultProfile::off`) costs exactly one pointer test per
// delivered packet.
#pragma once

#include <cstddef>

#include "netsim/packet.h"
#include "netsim/routing_plane.h"

namespace vpna::netsim {

// What the injector did to one delivery. `drop` loses the packet (the
// sender sees kDropped and is charged the transaction timeout, exactly
// like a middlebox drop); `extra_latency_ms` is added to the one-way path
// latency (both directions feel it — a latency spike, not a drop).
struct FaultVerdict {
  bool drop = false;
  double extra_latency_ms = 0.0;
};

// In-path fault oracle consulted by Network::deliver — and, on the
// capacity-aware traffic plane, by transport::run_streams exactly once per
// data packet at injection time, *before* the packet enters its first link
// queue. That ordering is the double-count audit contract: a fault drop is
// the injector's (counted under faults.* and a stream's fault_drops) and
// the dropped packet never occupies queue bytes, so it can never also be a
// queue tail-drop or pick up an ECN mark; queue drops and CE marks belong
// exclusively to the LinkQueue layer. `path`/`path_len` is the resolved
// router walk from the sender's router to the destination's router,
// inclusive; `now_ms` is the virtual clock at send time. Implementations
// must be deterministic functions of (packet, path, now, their own seeded
// state) — the campaign engine replays them across worker counts and
// byte-compares the results.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  virtual FaultVerdict on_deliver(const Packet& packet, const RouterId* path,
                                  std::size_t path_len, double now_ms) = 0;
};

}  // namespace vpna::netsim

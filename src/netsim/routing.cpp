#include "netsim/routing.h"

#include <algorithm>

#include "util/strings.h"

namespace vpna::netsim {

void RouteTable::index_route(std::uint32_t idx) {
  const Route& route = routes_[idx];
  auto& buckets =
      route.prefix.family() == IpFamily::kV4 ? buckets4_ : buckets6_;
  // Keep buckets sorted descending by prefix length (longest-first probe
  // order). The bucket count is tiny — a host table has a handful of
  // distinct prefix lengths — so a linear insertion is fine.
  auto it = std::find_if(buckets.begin(), buckets.end(), [&](const Bucket& b) {
    return b.prefix_len <= route.prefix.prefix_len();
  });
  if (it == buckets.end() || it->prefix_len != route.prefix.prefix_len())
    it = buckets.insert(it, Bucket{route.prefix.prefix_len(), {}});
  // idx is the largest index so far (add()) or appended in ascending order
  // (rebuild_index()), so push_back keeps the per-net list ascending —
  // which is what makes "insertion order" the final tie-break.
  it->nets[route.prefix.network()].push_back(idx);
}

void RouteTable::rebuild_index() {
  buckets4_.clear();
  buckets6_.clear();
  for (std::uint32_t i = 0; i < routes_.size(); ++i) index_route(i);
}

void RouteTable::add(Route route) {
  routes_.push_back(std::move(route));
  index_route(static_cast<std::uint32_t>(routes_.size() - 1));
}

std::size_t RouteTable::remove(const Cidr& prefix,
                               std::string_view interface_name) {
  const auto before = routes_.size();
  std::erase_if(routes_, [&](const Route& r) {
    return r.prefix == prefix && r.interface_name == interface_name;
  });
  if (routes_.size() != before) rebuild_index();
  return before - routes_.size();
}

std::size_t RouteTable::remove_interface(std::string_view interface_name) {
  const auto before = routes_.size();
  std::erase_if(routes_, [&](const Route& r) {
    return r.interface_name == interface_name;
  });
  if (routes_.size() != before) rebuild_index();
  return before - routes_.size();
}

std::optional<Route> RouteTable::lookup(const IpAddr& dst) const {
  // Hybrid: a handful of routes (the typical host table — default route,
  // VPN pin, tun default) is faster to scan than to hash; the index wins
  // once the table outgrows a cache line or two.
  if (routes_.size() <= kLinearScanThreshold) return lookup_naive(dst);
  for (const Bucket& bucket : buckets_for(dst.family())) {
    const auto it = bucket.nets.find(dst.masked(bucket.prefix_len));
    if (it == bucket.nets.end()) continue;
    // Same prefix length and network: lowest metric wins, then insertion
    // order (indices are ascending, strict < keeps the earliest).
    const Route* best = nullptr;
    for (const std::uint32_t idx : it->second) {
      const Route& r = routes_[idx];
      if (best == nullptr || r.metric < best->metric) best = &r;
    }
    return *best;
  }
  return std::nullopt;
}

std::optional<Route> RouteTable::lookup_naive(const IpAddr& dst) const {
  const Route* best = nullptr;
  for (const auto& r : routes_) {
    if (r.prefix.family() != dst.family()) continue;
    if (!r.prefix.contains(dst)) continue;
    if (best == nullptr || r.prefix.prefix_len() > best->prefix.prefix_len() ||
        (r.prefix.prefix_len() == best->prefix.prefix_len() &&
         r.metric < best->metric)) {
      best = &r;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::string RouteTable::dump() const {
  std::string out;
  for (const auto& r : routes_) {
    out += util::format("%-24s dev %-6s", r.prefix.str().c_str(),
                        r.interface_name.c_str());
    if (r.gateway) out += util::format(" via %s", r.gateway->str().c_str());
    if (r.metric != 0) out += util::format(" metric %d", r.metric);
    out += '\n';
  }
  return out;
}

}  // namespace vpna::netsim

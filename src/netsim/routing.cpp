#include "netsim/routing.h"

#include <algorithm>

#include "util/strings.h"

namespace vpna::netsim {

void RouteTable::add(Route route) { routes_.push_back(std::move(route)); }

std::size_t RouteTable::remove(const Cidr& prefix,
                               std::string_view interface_name) {
  const auto before = routes_.size();
  std::erase_if(routes_, [&](const Route& r) {
    return r.prefix == prefix && r.interface_name == interface_name;
  });
  return before - routes_.size();
}

std::size_t RouteTable::remove_interface(std::string_view interface_name) {
  const auto before = routes_.size();
  std::erase_if(routes_, [&](const Route& r) {
    return r.interface_name == interface_name;
  });
  return before - routes_.size();
}

std::optional<Route> RouteTable::lookup(const IpAddr& dst) const {
  const Route* best = nullptr;
  for (const auto& r : routes_) {
    if (r.prefix.family() != dst.family()) continue;
    if (!r.prefix.contains(dst)) continue;
    if (best == nullptr || r.prefix.prefix_len() > best->prefix.prefix_len() ||
        (r.prefix.prefix_len() == best->prefix.prefix_len() &&
         r.metric < best->metric)) {
      best = &r;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::string RouteTable::dump() const {
  std::string out;
  for (const auto& r : routes_) {
    out += util::format("%-24s dev %-6s", r.prefix.str().c_str(),
                        r.interface_name.c_str());
    if (r.gateway) out += util::format(" via %s", r.gateway->str().c_str());
    if (r.metric != 0) out += util::format(" metric %d", r.metric);
    out += '\n';
  }
  return out;
}

}  // namespace vpna::netsim

#include "netsim/capture.h"

#include "util/strings.h"

namespace vpna::netsim {

void CaptureBuffer::record_impl(util::SimTime time, Direction dir,
                                std::string_view interface_name,
                                const Packet& packet) {
  records_.push_back(
      CaptureRecord{time, dir, std::string(interface_name), packet});
}

std::vector<CaptureRecord> CaptureBuffer::on_interface(
    std::string_view interface_name) const {
  std::vector<CaptureRecord> out;
  for (const auto& r : records_)
    if (r.interface_name == interface_name) out.push_back(r);
  return out;
}

std::vector<CaptureRecord> CaptureBuffer::matching(
    const std::function<bool(const CaptureRecord&)>& pred) const {
  std::vector<CaptureRecord> out;
  for (const auto& r : records_)
    if (pred(r)) out.push_back(r);
  return out;
}

std::string CaptureBuffer::dump(std::size_t max_lines) const {
  std::string out;
  std::size_t lines = 0;
  for (const auto& r : records_) {
    if (lines >= max_lines) {
      out += util::format("... %zu more record(s)\n", records_.size() - lines);
      break;
    }
    const bool encapsulated = r.packet.payload.starts_with("TUN1|");
    out += util::format(
        "%9.3fs %-5s %-3s %s %s:%u -> %s:%u len=%zu%s\n",
        r.time.seconds(), r.interface_name.c_str(),
        r.direction == Direction::kOut ? "OUT" : "IN",
        std::string(proto_name(r.packet.proto)).c_str(),
        r.packet.src.str().c_str(), r.packet.src_port,
        r.packet.dst.str().c_str(), r.packet.dst_port, r.packet.payload.size(),
        encapsulated ? " [tunnel]" : "");
    ++lines;
  }
  return out;
}

}  // namespace vpna::netsim

// The simulated Internet fabric: a graph of routers joined by latency-
// weighted links, with hosts attached at routers. Packet transactions are
// synchronous (request in, optional reply out) with full latency accounting,
// TTL semantics for traceroute, per-router middleboxes for in-path
// interception (country-level censorship), and capture hooks on both ends.
//
// The topology itself (which routers exist, their link latencies derived
// from geography) is built by the `inet` module; netsim is geography-free.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/fault.h"
#include "netsim/host.h"
#include "netsim/link_queue.h"
#include "netsim/packet.h"
#include "netsim/routing_plane.h"
#include "util/clock.h"
#include "util/rng.h"

namespace vpna::netsim {

// In-path packet inspector/modifier attached to a router. `on_transit` may
// mutate the packet, let it pass, drop it, or answer it in place of the
// destination (how national block pages behave).
class Middlebox {
 public:
  virtual ~Middlebox() = default;

  enum class Action : std::uint8_t { kPass, kDrop, kRespond };
  struct Verdict {
    Action action = Action::kPass;
    std::string response_payload;  // used when action == kRespond
  };

  virtual Verdict on_transit(Packet& packet) = 0;
};

struct TransactOptions {
  // Virtual time charged when a transaction fails to complete (timeout).
  double timeout_ms = 1000.0;
  // Extra RTTs charged on top of the base exchange (e.g. TCP+TLS
  // handshakes are accounted by the protocol layers via this knob).
  int extra_round_trips = 0;
};

enum class TransactStatus : std::uint8_t {
  kOk,              // delivered, and a reply (possibly empty) came back
  kNoRoute,         // sender had no route to destination
  kInterfaceDown,   // route resolved to a downed interface
  kBlockedLocal,    // sender firewall dropped the packet
  kBlockedRemote,   // destination firewall dropped the packet
  kNoSuchHost,      // destination IP not registered anywhere
  kNoService,       // delivered but nothing bound on (proto, port)
  kNoReply,         // service chose not to respond
  kDropped,         // middlebox or tunnel dropped it
  kTtlExpired,      // TTL hit zero in transit (traceroute probe)
};

[[nodiscard]] std::string_view status_name(TransactStatus s) noexcept;

struct TransactResult {
  TransactStatus status = TransactStatus::kNoRoute;
  double rtt_ms = 0.0;      // total virtual time consumed
  std::string reply;        // reply payload when status == kOk
  IpAddr responder;         // who answered (router for kTtlExpired)
  bool via_tunnel = false;  // left the sender through a tun interface

  [[nodiscard]] bool ok() const noexcept { return status == TransactStatus::kOk; }
};

struct TracerouteHop {
  int ttl = 0;
  std::optional<IpAddr> router;  // nullopt = probe lost
  double rtt_ms = 0.0;
};

struct TracerouteResult {
  std::vector<TracerouteHop> hops;
  bool reached = false;
};

class Network {
 public:
  // `jitter_stddev_ms` adds gaussian noise to each measured RTT, modelling
  // queueing variance; 0 disables jitter.
  Network(util::SimClock& clock, util::Rng rng, double jitter_stddev_ms = 0.15);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology -------------------------------------------------------------
  // Adds a router; its hop address is derived from the id (198.18.x.y).
  RouterId add_router(std::string name);
  // Undirected link with one-way latency in milliseconds.
  void add_link(RouterId a, RouterId b, double latency_ms);
  [[nodiscard]] std::size_t router_count() const noexcept {
    return routers_.size();
  }
  [[nodiscard]] const std::string& router_name(RouterId id) const;
  [[nodiscard]] IpAddr router_addr(RouterId id) const;

  void set_middlebox(RouterId id, std::shared_ptr<Middlebox> mb);
  void clear_middlebox(RouterId id);

  // --- link capacity ---------------------------------------------------------
  // Assigns a bandwidth/queue configuration to the undirected link (a, b);
  // both directions share the configuration but are transmitted (and
  // queued) independently by the traffic plane. Capacities are *not* part
  // of the routing topology: they never touch the epoch, the fingerprint
  // or the transact path, so a capacity-free run — and every transact-only
  // run — is byte-identical to a build without this layer.
  void set_link_capacity(RouterId a, RouterId b, const LinkCapacity& capacity);
  // The capacity of link (u, v) in either orientation; nullptr when the
  // link is uncapacitated (pure-delay, the pre-capacity behaviour).
  [[nodiscard]] const LinkCapacity* link_capacity(RouterId u,
                                                  RouterId v) const noexcept;
  [[nodiscard]] bool any_link_capacity() const noexcept {
    return !link_capacities_.empty();
  }

  // Smallest latency among (possibly parallel) links u->v, in ms. 1e18
  // when no such link exists. Public for the traffic plane, which charges
  // per-hop propagation itself instead of using a path total.
  [[nodiscard]] double min_link_latency(RouterId u, RouterId v) const noexcept {
    return link_latency(u, v);
  }

  // A resolved unicast path for the traffic plane: the router walk from
  // the sender's router to the (anycast-best) destination's router, the
  // access latencies at both ends, and the destination host. Uses the same
  // path machinery as transact, so traffic-plane packets cross exactly the
  // links a transact exchange would.
  struct ResolvedPath {
    std::vector<RouterId> routers;  // src router .. dst router, inclusive
    double path_latency_ms = 0.0;   // one-way, router path only
    double src_access_ms = 0.0;
    double dst_access_ms = 0.0;
    Host* dst_host = nullptr;
  };
  [[nodiscard]] std::optional<ResolvedPath> resolve_path(const Host& from,
                                                         const IpAddr& dst);

  // --- fault injection -------------------------------------------------------
  // Installs (nullptr clears) the fault injector consulted on every direct
  // delivery. With none installed — the default, and FaultProfile::off —
  // the per-packet cost is a single pointer test.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector) noexcept {
    fault_injector_ = std::move(injector);
  }
  [[nodiscard]] FaultInjector* fault_injector() const noexcept {
    return fault_injector_.get();
  }
  // Snapshot of the undirected links (each pair once, a < b), in
  // add_router/add_link order. Fault planning samples real links from this
  // instead of guessing router-id pairs.
  [[nodiscard]] std::vector<std::pair<RouterId, RouterId>> link_pairs() const;

  // --- routing plane ---------------------------------------------------------
  // Declares the current topology the frozen "core". Path resolution then
  // runs on an all-pairs routing plane (built lazily or adopted) instead of
  // per-pair Dijkstra. Routers added later are treated as single-link leaf
  // extensions hanging off the core — exactly how provider facilities attach
  // — and keep the plane valid; rewiring the core (a new core-core link, or
  // a second link on a leaf) discards the plane and falls back to on-demand
  // Dijkstra. Throws if already frozen.
  void freeze_topology();
  [[nodiscard]] bool topology_frozen() const noexcept { return frozen_; }
  // Hash of the frozen core's routers and links; two networks that built
  // the same topology in the same order agree. Valid only while frozen.
  [[nodiscard]] std::uint64_t topology_fingerprint() const noexcept {
    return fingerprint_;
  }
  // Bumps on every add_router/add_link, frozen or not; lets callers detect
  // topology mutations made after they sampled the plane.
  [[nodiscard]] std::uint64_t topology_epoch() const noexcept {
    return topology_epoch_;
  }
  // The plane for the frozen core, building it on first use. Returns
  // nullptr when not frozen (or the plane was invalidated by core
  // rewiring). The result is immutable and safe to share across threads
  // and across Network instances with the same fingerprint.
  [[nodiscard]] std::shared_ptr<const RoutingPlane> routing_plane() const;
  // Installs a plane precomputed elsewhere (typically shared across
  // campaign shards). Throws std::logic_error unless this network is
  // frozen and the plane's fingerprint matches topology_fingerprint().
  void adopt_routing_plane(std::shared_ptr<const RoutingPlane> plane);

  // --- host attachment --------------------------------------------------------
  // Registers a host at a router; all the host's global addresses become
  // routable. `access_latency_ms` is the one-way host<->router latency.
  // Multiple hosts may share an address (anycast replicas, e.g. public DNS
  // and root-server instances); delivery selects the replica closest to the
  // sender, as BGP anycast does.
  void attach_host(Host& host, RouterId router, double access_latency_ms = 0.3);
  void detach_host(Host& host);
  // Capacity hint for a build that knows its host count up front (shard
  // construction does): pre-sizes the attachment table and pre-buckets the
  // host/address hash indexes so a bulk attach triggers no rehashing.
  void reserve_hosts(std::size_t host_count);
  [[nodiscard]] Host* host_by_addr(const IpAddr& addr) const;
  // Re-index a host's addresses after interfaces changed.
  void refresh_host(Host& host);

  // --- data path ---------------------------------------------------------------
  // Sends `packet` from `from`, waits for the reply, advances the clock by
  // the consumed time, and records captures on both hosts. Synchronous and
  // re-entrant: services may call transact() themselves (tunnel endpoints,
  // proxies do). When an obs recorder/registry is bound to the calling
  // thread, each transaction opens a sim-time span and feeds the net.*
  // metrics; with nothing bound the instrumentation is a thread-local read.
  TransactResult transact(Host& from, Packet packet,
                          const TransactOptions& opts = {});

  // ICMP echo convenience. Returns RTT in ms, or nullopt if unreachable.
  std::optional<double> ping(Host& from, const IpAddr& dst);

  // TTL-stepped route discovery toward dst.
  TracerouteResult traceroute(Host& from, const IpAddr& dst, int max_ttl = 30);

  // One-way propagation latency between two attached hosts, without jitter
  // (used by inet to sanity-check the topology and by tests).
  [[nodiscard]] std::optional<double> base_latency_ms(const Host& a,
                                                      const Host& b) const;

  [[nodiscard]] util::SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

 private:
  struct Router {
    std::string name;
    std::shared_ptr<Middlebox> middlebox;
    std::vector<std::pair<RouterId, double>> links;
  };
  struct Attachment {
    Host* host = nullptr;  // nullptr = detached slot (kept so indices stay stable)
    RouterId router = 0;
    double access_latency_ms = 0.3;
    // The host addresses currently present in addr_to_attachment_, so
    // detach/refresh can unindex incrementally.
    std::vector<IpAddr> indexed_addrs;
  };
  struct PathInfo {
    std::vector<RouterId> routers;  // from src router to dst router inclusive
    double latency_ms = 0.0;        // one-way, router path only
  };

  [[nodiscard]] const Attachment* attachment_of(const Host& host) const;
  void reindex_addresses();
  // Incremental index maintenance for one attachment slot.
  void index_attachment(std::size_t slot);
  void unindex_attachment(std::size_t slot);
  // Debug-build invariant: the incremental index equals a full rebuild.
  void debug_check_address_index() const;
  // Path with memoization keyed on (src, dst): reconstructed from the
  // routing plane when frozen, per-pair Dijkstra otherwise.
  [[nodiscard]] const PathInfo* path(RouterId a, RouterId b) const;
  // Fills `out` from the plane (core next-hop walk plus leaf extensions).
  // Returns false when unreachable. Pre: plane_ is set.
  bool plane_path(RouterId a, RouterId b, PathInfo& out) const;
  // Smallest latency among (possibly parallel) links u->v; used to re-sum
  // a reconstructed path's latency in the same order Dijkstra accumulated
  // it, keeping plane and Dijkstra latencies bit-identical.
  [[nodiscard]] double link_latency(RouterId u, RouterId v) const;
  void invalidate_routing_plane();
  double jitter() ;

  // transact() minus the tracing/metrics wrapper (the recursive core).
  TransactResult transact_impl(Host& from, Packet& packet,
                               const TransactOptions& opts);

  // The directly-routed delivery step (no tunnel handling): walks the router
  // path, applies middleboxes and TTL, delivers to the destination service
  // and routes the reply back. Returns consumed one-way-or-round-trip time
  // in the result.
  TransactResult deliver(Host& from, const Attachment& from_att,
                         Packet& packet,
                         const TransactOptions& opts);

  util::SimClock& clock_;
  util::Rng rng_;
  double jitter_stddev_ms_;
  std::vector<Router> routers_;
  // Append-only slots (detach tombstones instead of erasing) so the address
  // index and host map can reference attachments by stable index.
  std::vector<Attachment> attachments_;
  // Host -> attachment slot; O(1) replacement for the per-packet scan.
  std::unordered_map<const Host*, std::size_t> host_index_;
  // Address -> attachment slots, ascending (attach order); more than one
  // entry means anycast.
  std::unordered_map<IpAddr, std::vector<std::size_t>> addr_to_attachment_;
  // Memoized paths, capped: at O(10³)-provider scale the (src, dst) router
  // pair space would otherwise grow the cache without bound. Hitting the cap
  // clears the cache — paths are pure functions of the frozen topology, so
  // recomputation is deterministic and results are unaffected.
  static constexpr std::size_t kPathCacheMaxEntries = 1 << 16;
  mutable std::unordered_map<std::uint64_t, PathInfo> path_cache_;
  // Routing-plane state (see freeze_topology()).
  bool frozen_ = false;
  std::size_t frozen_count_ = 0;   // routers covered by the plane
  std::uint64_t fingerprint_ = 0;  // of the frozen core
  std::uint64_t topology_epoch_ = 0;
  mutable std::shared_ptr<const RoutingPlane> plane_;
  struct LeafLink {
    RouterId gateway = kNoRouter;  // kNoRouter = no link yet (unreachable)
    double latency_ms = 0.0;
  };
  std::vector<LeafLink> leaf_links_;  // index: router id - frozen_count_
  // Undirected link (a < b, packed) -> capacity. Consulted only by the
  // traffic plane; empty (the default) means every link is pure-delay.
  std::unordered_map<std::uint64_t, LinkCapacity> link_capacities_;
  std::shared_ptr<FaultInjector> fault_injector_;
  int transact_depth_ = 0;  // recursion guard
};

}  // namespace vpna::netsim

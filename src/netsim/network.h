// The simulated Internet fabric: a graph of routers joined by latency-
// weighted links, with hosts attached at routers. Packet transactions are
// synchronous (request in, optional reply out) with full latency accounting,
// TTL semantics for traceroute, per-router middleboxes for in-path
// interception (country-level censorship), and capture hooks on both ends.
//
// The topology itself (which routers exist, their link latencies derived
// from geography) is built by the `inet` module; netsim is geography-free.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/host.h"
#include "netsim/packet.h"
#include "util/clock.h"
#include "util/rng.h"

namespace vpna::netsim {

using RouterId = std::uint32_t;

// In-path packet inspector/modifier attached to a router. `on_transit` may
// mutate the packet, let it pass, drop it, or answer it in place of the
// destination (how national block pages behave).
class Middlebox {
 public:
  virtual ~Middlebox() = default;

  enum class Action : std::uint8_t { kPass, kDrop, kRespond };
  struct Verdict {
    Action action = Action::kPass;
    std::string response_payload;  // used when action == kRespond
  };

  virtual Verdict on_transit(Packet& packet) = 0;
};

struct TransactOptions {
  // Virtual time charged when a transaction fails to complete (timeout).
  double timeout_ms = 1000.0;
  // Extra RTTs charged on top of the base exchange (e.g. TCP+TLS
  // handshakes are accounted by the protocol layers via this knob).
  int extra_round_trips = 0;
};

enum class TransactStatus : std::uint8_t {
  kOk,              // delivered, and a reply (possibly empty) came back
  kNoRoute,         // sender had no route to destination
  kInterfaceDown,   // route resolved to a downed interface
  kBlockedLocal,    // sender firewall dropped the packet
  kBlockedRemote,   // destination firewall dropped the packet
  kNoSuchHost,      // destination IP not registered anywhere
  kNoService,       // delivered but nothing bound on (proto, port)
  kNoReply,         // service chose not to respond
  kDropped,         // middlebox or tunnel dropped it
  kTtlExpired,      // TTL hit zero in transit (traceroute probe)
};

[[nodiscard]] std::string_view status_name(TransactStatus s) noexcept;

struct TransactResult {
  TransactStatus status = TransactStatus::kNoRoute;
  double rtt_ms = 0.0;      // total virtual time consumed
  std::string reply;        // reply payload when status == kOk
  IpAddr responder;         // who answered (router for kTtlExpired)
  bool via_tunnel = false;  // left the sender through a tun interface

  [[nodiscard]] bool ok() const noexcept { return status == TransactStatus::kOk; }
};

struct TracerouteHop {
  int ttl = 0;
  std::optional<IpAddr> router;  // nullopt = probe lost
  double rtt_ms = 0.0;
};

struct TracerouteResult {
  std::vector<TracerouteHop> hops;
  bool reached = false;
};

class Network {
 public:
  // `jitter_stddev_ms` adds gaussian noise to each measured RTT, modelling
  // queueing variance; 0 disables jitter.
  Network(util::SimClock& clock, util::Rng rng, double jitter_stddev_ms = 0.15);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology -------------------------------------------------------------
  // Adds a router; its hop address is derived from the id (198.18.x.y).
  RouterId add_router(std::string name);
  // Undirected link with one-way latency in milliseconds.
  void add_link(RouterId a, RouterId b, double latency_ms);
  [[nodiscard]] std::size_t router_count() const noexcept {
    return routers_.size();
  }
  [[nodiscard]] const std::string& router_name(RouterId id) const;
  [[nodiscard]] IpAddr router_addr(RouterId id) const;

  void set_middlebox(RouterId id, std::shared_ptr<Middlebox> mb);
  void clear_middlebox(RouterId id);

  // --- host attachment --------------------------------------------------------
  // Registers a host at a router; all the host's global addresses become
  // routable. `access_latency_ms` is the one-way host<->router latency.
  // Multiple hosts may share an address (anycast replicas, e.g. public DNS
  // and root-server instances); delivery selects the replica closest to the
  // sender, as BGP anycast does.
  void attach_host(Host& host, RouterId router, double access_latency_ms = 0.3);
  void detach_host(Host& host);
  [[nodiscard]] Host* host_by_addr(const IpAddr& addr) const;
  // Re-index a host's addresses after interfaces changed.
  void refresh_host(Host& host);

  // --- data path ---------------------------------------------------------------
  // Sends `packet` from `from`, waits for the reply, advances the clock by
  // the consumed time, and records captures on both hosts. Synchronous and
  // re-entrant: services may call transact() themselves (tunnel endpoints,
  // proxies do). When an obs recorder/registry is bound to the calling
  // thread, each transaction opens a sim-time span and feeds the net.*
  // metrics; with nothing bound the instrumentation is a thread-local read.
  TransactResult transact(Host& from, Packet packet,
                          const TransactOptions& opts = {});

  // ICMP echo convenience. Returns RTT in ms, or nullopt if unreachable.
  std::optional<double> ping(Host& from, const IpAddr& dst);

  // TTL-stepped route discovery toward dst.
  TracerouteResult traceroute(Host& from, const IpAddr& dst, int max_ttl = 30);

  // One-way propagation latency between two attached hosts, without jitter
  // (used by inet to sanity-check the topology and by tests).
  [[nodiscard]] std::optional<double> base_latency_ms(const Host& a,
                                                      const Host& b) const;

  [[nodiscard]] util::SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

 private:
  struct Router {
    std::string name;
    std::shared_ptr<Middlebox> middlebox;
    std::vector<std::pair<RouterId, double>> links;
  };
  struct Attachment {
    Host* host = nullptr;
    RouterId router = 0;
    double access_latency_ms = 0.3;
  };
  struct PathInfo {
    std::vector<RouterId> routers;  // from src router to dst router inclusive
    double latency_ms = 0.0;        // one-way, router path only
  };

  [[nodiscard]] const Attachment* attachment_of(const Host& host) const;
  void reindex_addresses();
  // Dijkstra with memoization keyed on (src, dst).
  [[nodiscard]] const PathInfo* path(RouterId a, RouterId b) const;
  double jitter() ;

  // transact() minus the tracing/metrics wrapper (the recursive core).
  TransactResult transact_impl(Host& from, Packet packet,
                               const TransactOptions& opts);

  // The directly-routed delivery step (no tunnel handling): walks the router
  // path, applies middleboxes and TTL, delivers to the destination service
  // and routes the reply back. Returns consumed one-way-or-round-trip time
  // in the result.
  TransactResult deliver(Host& from, const Attachment& from_att, Packet packet,
                         const TransactOptions& opts);

  util::SimClock& clock_;
  util::Rng rng_;
  double jitter_stddev_ms_;
  std::vector<Router> routers_;
  std::vector<Attachment> attachments_;
  // Address -> attachment indices; more than one entry means anycast.
  std::unordered_map<IpAddr, std::vector<std::size_t>> addr_to_attachment_;
  mutable std::unordered_map<std::uint64_t, PathInfo> path_cache_;
  int transact_depth_ = 0;  // recursion guard
};

}  // namespace vpna::netsim

#include "netsim/event_loop.h"

#include <algorithm>

namespace vpna::netsim {

void EventLoop::schedule_at(util::SimTime at, EventActor& actor,
                            std::uint64_t tag) {
  if (at < now_) at = now_;
  heap_.push_back(Event{at.micros(), next_seq_++, &actor, tag});
  std::push_heap(heap_.begin(), heap_.end(), &EventLoop::later);
}

bool EventLoop::run_one() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), &EventLoop::later);
  const Event ev = heap_.back();
  heap_.pop_back();
  now_ = util::SimTime(ev.at_us);
  ++dispatched_;
  ev.actor->on_event(*this, ev.tag);
  return true;
}

std::size_t EventLoop::run() {
  std::size_t n = 0;
  while (run_one()) ++n;
  return n;
}

std::size_t EventLoop::run_until(util::SimTime deadline) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_.front().at_us <= deadline.micros()) {
    run_one();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace vpna::netsim

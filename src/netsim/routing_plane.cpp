#include "netsim/routing_plane.h"

#include <algorithm>
#include <queue>

namespace vpna::netsim {

std::shared_ptr<const RoutingPlane> RoutingPlane::build(
    const Adjacency& adjacency, std::uint64_t fingerprint) {
  auto plane = std::shared_ptr<RoutingPlane>(new RoutingPlane());
  const std::size_t n = adjacency.size();
  plane->n_ = n;
  plane->fingerprint_ = fingerprint;
  plane->parent_.assign(n * n, kNoRouter);

  // One Dijkstra per source, mirroring Network's on-demand algorithm
  // (including its tie-breaking) so reconstructed paths are identical.
  constexpr double kInf = 1e18;
  std::vector<double> dist;
  using QE = std::pair<double, RouterId>;
  for (RouterId src = 0; src < n; ++src) {
    dist.assign(n, kInf);
    RouterId* parent_row = plane->parent_.data() + static_cast<std::size_t>(src) * n;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> q;
    dist[src] = 0;
    q.emplace(0.0, src);
    while (!q.empty()) {
      const auto [d, u] = q.top();
      q.pop();
      if (d > dist[u]) continue;
      for (const auto& [v, w] : adjacency[u]) {
        if (dist[u] + w < dist[v]) {
          dist[v] = dist[u] + w;
          parent_row[v] = u;
          q.emplace(dist[v], v);
        }
      }
    }
  }
  return plane;
}

bool RoutingPlane::append_path(RouterId src, RouterId dst,
                               std::vector<RouterId>& out) const {
  if (!reachable(src, dst)) return false;
  const std::size_t mark = out.size();
  for (RouterId cur = dst;;) {
    out.push_back(cur);
    if (cur == src) break;
    cur = parent(src, cur);
  }
  std::reverse(out.begin() + static_cast<std::ptrdiff_t>(mark), out.end());
  return true;
}

}  // namespace vpna::netsim

#include "netsim/packet.h"

#include <charconv>

#include "util/strings.h"

namespace vpna::netsim {

std::string_view proto_name(Proto p) noexcept {
  switch (p) {
    case Proto::kUdp:
      return "udp";
    case Proto::kTcp:
      return "tcp";
    case Proto::kIcmpEcho:
      return "icmp-echo";
    case Proto::kIcmpEchoReply:
      return "icmp-echo-reply";
    case Proto::kIcmpTimeExceeded:
      return "icmp-time-exceeded";
  }
  return "unknown";
}

std::string Packet::summary() const {
  return util::format("%s %s:%u -> %s:%u ttl=%d len=%zu",
                      std::string(proto_name(proto)).c_str(),
                      src.str().c_str(), src_port, dst.str().c_str(), dst_port,
                      ttl, payload.size());
}

std::string encode_inner(const Packet& inner) {
  // "TUN1|src|dst|proto|sport|dport|ttl|payload_len|payload"
  std::string head = util::format(
      "TUN1|%s|%s|%u|%u|%u|%d|%zu|", inner.src.str().c_str(),
      inner.dst.str().c_str(), static_cast<unsigned>(inner.proto),
      inner.src_port, inner.dst_port, inner.ttl, inner.payload.size());
  return head + inner.payload;
}

std::optional<Packet> decode_inner(std::string_view payload) {
  if (!util::starts_with(payload, "TUN1|")) return std::nullopt;
  // Split off the first 8 fields; the payload may itself contain '|'.
  std::string_view rest = payload.substr(5);
  std::array<std::string_view, 7> fields{};
  for (auto& f : fields) {
    const auto pos = rest.find('|');
    if (pos == std::string_view::npos) return std::nullopt;
    f = rest.substr(0, pos);
    rest = rest.substr(pos + 1);
  }
  Packet p;
  const auto src = IpAddr::parse(fields[0]);
  const auto dst = IpAddr::parse(fields[1]);
  if (!src || !dst) return std::nullopt;
  p.src = *src;
  p.dst = *dst;

  auto parse_uint = [](std::string_view s, unsigned long& out) {
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc{} && ptr == s.data() + s.size();
  };
  unsigned long proto = 0, sport = 0, dport = 0, ttl = 0, len = 0;
  if (!parse_uint(fields[2], proto) || proto > 4) return std::nullopt;
  if (!parse_uint(fields[3], sport) || sport > 0xffff) return std::nullopt;
  if (!parse_uint(fields[4], dport) || dport > 0xffff) return std::nullopt;
  if (!parse_uint(fields[5], ttl) || ttl > 255) return std::nullopt;
  if (!parse_uint(fields[6], len) || len != rest.size()) return std::nullopt;
  p.proto = static_cast<Proto>(proto);
  p.src_port = static_cast<std::uint16_t>(sport);
  p.dst_port = static_cast<std::uint16_t>(dport);
  p.ttl = static_cast<int>(ttl);
  p.payload = std::string(rest);
  return p;
}

}  // namespace vpna::netsim

#include "netsim/firewall.h"

namespace vpna::netsim {

void Firewall::add_rule(FwRule rule) { rules_.push_back(std::move(rule)); }

std::size_t Firewall::remove_label(std::string_view label) {
  const auto before = rules_.size();
  std::erase_if(rules_, [&](const FwRule& r) { return r.label == label; });
  return before - rules_.size();
}

FwAction Firewall::evaluate(const Packet& packet,
                            Direction direction) const noexcept {
  const IpAddr& remote =
      direction == Direction::kOut ? packet.dst : packet.src;
  const std::uint16_t remote_port =
      direction == Direction::kOut ? packet.dst_port : packet.src_port;

  for (const auto& r : rules_) {
    if (r.direction && *r.direction != direction) continue;
    if (r.remote_addr && *r.remote_addr != remote) continue;
    if (r.remote_prefix && !r.remote_prefix->contains(remote)) continue;
    if (r.proto && *r.proto != packet.proto) continue;
    if (r.remote_port && *r.remote_port != remote_port) continue;
    if (r.family && *r.family != packet.family()) continue;
    return r.action;
  }
  return FwAction::kAllow;
}

}  // namespace vpna::netsim

// Topology-epoch routing plane: all-pairs shortest-path data precomputed
// over a frozen router topology and shared read-only between simulations
// that build the same graph (every campaign shard constructs an identical
// backbone + datacenter core, so one plane serves all of them).
//
// The plane stores, for every source router, the parent array of its
// shortest-path tree — enough to reconstruct any path by a next-hop walk
// with no per-query Dijkstra and no allocation beyond the caller's reused
// buffer. Tie-breaking matches Network's on-demand Dijkstra exactly
// (min-heap ordered by (distance, router id); strict-improvement
// relaxation keeps the first-found predecessor), so a frozen network
// forwards packets along byte-identical paths.
//
// A plane is keyed by a topology fingerprint (hash of the frozen router
// and link set). Sharing contract: a Network only adopts a plane whose
// fingerprint matches its own frozen core; mutating topology after the
// freeze bumps the network's epoch and either extends the plane (single
// -link leaf routers) or discards it (core rewiring).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace vpna::netsim {

using RouterId = std::uint32_t;

inline constexpr RouterId kNoRouter = 0xffffffffu;

class RoutingPlane {
 public:
  // adjacency[r] lists (peer, one-way latency ms) in link insertion order —
  // the order matters for Dijkstra tie-breaking and must match the order
  // Network stores links in.
  using Adjacency = std::vector<std::vector<std::pair<RouterId, double>>>;

  // Runs one Dijkstra per source over the adjacency and freezes the result.
  [[nodiscard]] static std::shared_ptr<const RoutingPlane> build(
      const Adjacency& adjacency, std::uint64_t fingerprint);

  [[nodiscard]] std::size_t router_count() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

  // Predecessor of v on the shortest path from src; kNoRouter when v == src
  // or v is unreachable from src.
  [[nodiscard]] RouterId parent(RouterId src, RouterId v) const noexcept {
    return parent_[static_cast<std::size_t>(src) * n_ + v];
  }

  [[nodiscard]] bool reachable(RouterId src, RouterId dst) const noexcept {
    return src == dst || parent(src, dst) != kNoRouter;
  }

  // Appends the router sequence src..dst (inclusive) to `out`. Returns
  // false (appending nothing) when dst is unreachable from src.
  bool append_path(RouterId src, RouterId dst,
                   std::vector<RouterId>& out) const;

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return parent_.size() * sizeof(RouterId);
  }

 private:
  RoutingPlane() = default;

  std::size_t n_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::vector<RouterId> parent_;  // n_ * n_, row per source
};

}  // namespace vpna::netsim

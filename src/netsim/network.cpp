#include "netsim/network.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <queue>
#include <stdexcept>

#include "obs/profiler.h"
#include "obs/trace.h"

namespace vpna::netsim {

std::string_view status_name(TransactStatus s) noexcept {
  switch (s) {
    case TransactStatus::kOk: return "ok";
    case TransactStatus::kNoRoute: return "no-route";
    case TransactStatus::kInterfaceDown: return "interface-down";
    case TransactStatus::kBlockedLocal: return "blocked-local";
    case TransactStatus::kBlockedRemote: return "blocked-remote";
    case TransactStatus::kNoSuchHost: return "no-such-host";
    case TransactStatus::kNoService: return "no-service";
    case TransactStatus::kNoReply: return "no-reply";
    case TransactStatus::kDropped: return "dropped";
    case TransactStatus::kTtlExpired: return "ttl-expired";
  }
  return "unknown";
}

namespace {

// Per-status metric names, built once: the hot path must not concatenate
// strings per packet (obs::count takes a string_view).
constexpr std::array<std::string_view, 10> kTransactMetricNames = {
    "net.transact.ok",           "net.transact.no-route",
    "net.transact.interface-down", "net.transact.blocked-local",
    "net.transact.blocked-remote", "net.transact.no-such-host",
    "net.transact.no-service",   "net.transact.no-reply",
    "net.transact.dropped",      "net.transact.ttl-expired",
};

}  // namespace

Network::Network(util::SimClock& clock, util::Rng rng, double jitter_stddev_ms)
    : clock_(clock), rng_(std::move(rng)), jitter_stddev_ms_(jitter_stddev_ms) {}

RouterId Network::add_router(std::string name) {
  ++topology_epoch_;
  routers_.push_back(Router{std::move(name), nullptr, {}});
  if (frozen_) {
    // A new router hangs off the frozen core as a (future) leaf; existing
    // paths are unaffected, so both the plane and the path cache survive.
    leaf_links_.emplace_back();
  } else {
    path_cache_.clear();
  }
  return static_cast<RouterId>(routers_.size() - 1);
}

std::vector<std::pair<RouterId, RouterId>> Network::link_pairs() const {
  std::vector<std::pair<RouterId, RouterId>> out;
  for (RouterId a = 0; a < routers_.size(); ++a) {
    for (const auto& [b, latency] : routers_[a].links) {
      (void)latency;
      if (a < b) out.emplace_back(a, b);
    }
  }
  return out;
}

void Network::add_link(RouterId a, RouterId b, double latency_ms) {
  if (a >= routers_.size() || b >= routers_.size())
    throw std::out_of_range("add_link: unknown router");
  if (latency_ms < 0) throw std::invalid_argument("add_link: negative latency");
  ++topology_epoch_;
  routers_[a].links.emplace_back(b, latency_ms);
  routers_[b].links.emplace_back(a, latency_ms);
  if (!frozen_) {
    path_cache_.clear();
    return;
  }
  const bool a_core = a < frozen_count_;
  const bool b_core = b < frozen_count_;
  if (a_core == b_core) {
    // Core rewiring (or a link between two post-freeze routers): the plane
    // no longer describes the graph; fall back to on-demand Dijkstra.
    invalidate_routing_plane();
    return;
  }
  const RouterId leaf = a_core ? b : a;
  const RouterId gateway = a_core ? a : b;
  auto& link = leaf_links_[leaf - frozen_count_];
  if (link.gateway != kNoRouter) {
    // Second link on a leaf: no longer a single-homed extension.
    invalidate_routing_plane();
    return;
  }
  link.gateway = gateway;
  link.latency_ms = latency_ms;
  // A fresh leaf link only adds paths (never cached while unreachable:
  // path() does not memoize failures), so the cache stays valid.
}

void Network::freeze_topology() {
  if (frozen_) throw std::logic_error("freeze_topology: already frozen");
  obs::ProfileScope profile("routing.freeze");
  frozen_ = true;
  frozen_count_ = routers_.size();
  // FNV-1a over the router/link structure. Link latencies hash by bit
  // pattern; two networks built by the same deterministic code agree.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(frozen_count_);
  for (const auto& router : routers_) {
    mix(router.links.size());
    for (const auto& [peer, latency] : router.links) {
      mix(peer);
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(latency));
      std::memcpy(&bits, &latency, sizeof(bits));
      mix(bits);
    }
  }
  fingerprint_ = h;
}

void Network::invalidate_routing_plane() {
  frozen_ = false;
  frozen_count_ = 0;
  fingerprint_ = 0;
  plane_ = nullptr;
  leaf_links_.clear();
  path_cache_.clear();
}

std::shared_ptr<const RoutingPlane> Network::routing_plane() const {
  if (!frozen_) return nullptr;
  if (!plane_) {
    // Core adjacency only: links to post-freeze leaves are filtered out
    // (they cannot carry transit traffic), preserving core link order so
    // Dijkstra tie-breaking matches the on-demand fallback.
    RoutingPlane::Adjacency adjacency(frozen_count_);
    for (std::size_t r = 0; r < frozen_count_; ++r) {
      adjacency[r].reserve(routers_[r].links.size());
      for (const auto& [peer, latency] : routers_[r].links)
        if (peer < frozen_count_) adjacency[r].emplace_back(peer, latency);
    }
    plane_ = RoutingPlane::build(adjacency, fingerprint_);
  }
  return plane_;
}

void Network::adopt_routing_plane(std::shared_ptr<const RoutingPlane> plane) {
  if (!frozen_)
    throw std::logic_error("adopt_routing_plane: topology not frozen");
  if (plane == nullptr)
    throw std::logic_error("adopt_routing_plane: null plane");
  if (plane->fingerprint() != fingerprint_ ||
      plane->router_count() != frozen_count_)
    throw std::logic_error(
        "adopt_routing_plane: plane fingerprint does not match this topology");
  plane_ = std::move(plane);
}

const std::string& Network::router_name(RouterId id) const {
  return routers_.at(id).name;
}

IpAddr Network::router_addr(RouterId id) const {
  // Backbone router hop addresses live in 198.18.0.0/15.
  return IpAddr::v4(198, 18, static_cast<std::uint8_t>(id >> 8),
                    static_cast<std::uint8_t>(id & 0xff));
}

namespace {

std::uint64_t link_key(RouterId a, RouterId b) noexcept {
  const auto lo = std::min(a, b);
  const auto hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

void Network::set_link_capacity(RouterId a, RouterId b,
                                const LinkCapacity& capacity) {
  if (a >= routers_.size() || b >= routers_.size())
    throw std::out_of_range("set_link_capacity: unknown router");
  if (!capacity.enabled())
    throw std::invalid_argument("set_link_capacity: zero bandwidth");
  link_capacities_[link_key(a, b)] = capacity;
}

const LinkCapacity* Network::link_capacity(RouterId u,
                                           RouterId v) const noexcept {
  if (link_capacities_.empty()) return nullptr;
  const auto it = link_capacities_.find(link_key(u, v));
  return it == link_capacities_.end() ? nullptr : &it->second;
}

std::optional<Network::ResolvedPath> Network::resolve_path(const Host& from,
                                                           const IpAddr& dst) {
  const auto* from_att = attachment_of(from);
  if (from_att == nullptr) return std::nullopt;
  const auto dst_it = addr_to_attachment_.find(dst);
  if (dst_it == addr_to_attachment_.end() || dst_it->second.empty())
    return std::nullopt;
  // Anycast tie-breaking mirrors deliver(): lowest path latency wins.
  std::size_t best_idx = dst_it->second.front();
  if (dst_it->second.size() > 1) {
    double best = 1e18;
    for (std::size_t idx : dst_it->second) {
      const auto* pi = path(from_att->router, attachments_[idx].router);
      if (pi != nullptr && pi->latency_ms < best) {
        best = pi->latency_ms;
        best_idx = idx;
      }
    }
  }
  const Attachment& dst_att = attachments_[best_idx];
  const auto* p = path(from_att->router, dst_att.router);
  if (p == nullptr) return std::nullopt;
  ResolvedPath out;
  out.routers = p->routers;
  out.path_latency_ms = p->latency_ms;
  out.src_access_ms = from_att->access_latency_ms;
  out.dst_access_ms = dst_att.access_latency_ms;
  out.dst_host = dst_att.host;
  return out;
}

void Network::set_middlebox(RouterId id, std::shared_ptr<Middlebox> mb) {
  routers_.at(id).middlebox = std::move(mb);
}

void Network::clear_middlebox(RouterId id) { routers_.at(id).middlebox = nullptr; }

void Network::attach_host(Host& host, RouterId router, double access_latency_ms) {
  if (router >= routers_.size())
    throw std::out_of_range("attach_host: unknown router");
  if (host_index_.contains(&host))
    throw std::logic_error("attach_host: host already attached: " + host.name());
  attachments_.push_back(Attachment{&host, router, access_latency_ms, {}});
  host_index_.emplace(&host, attachments_.size() - 1);
  index_attachment(attachments_.size() - 1);
  debug_check_address_index();
}

void Network::detach_host(Host& host) {
  const auto it = host_index_.find(&host);
  if (it == host_index_.end()) return;
  const std::size_t slot = it->second;
  unindex_attachment(slot);
  attachments_[slot].host = nullptr;  // tombstone; slot indices stay stable
  host_index_.erase(it);
  debug_check_address_index();
}

void Network::reserve_hosts(std::size_t host_count) {
  const std::size_t total = attachments_.size() + host_count;
  attachments_.reserve(total);
  host_index_.reserve(total);
  // Most hosts index two global addresses (v4 + v6).
  addr_to_attachment_.reserve(2 * total);
}

void Network::refresh_host(Host& host) {
  const auto it = host_index_.find(&host);
  if (it == host_index_.end()) return;
  unindex_attachment(it->second);
  index_attachment(it->second);
  debug_check_address_index();
}

void Network::index_attachment(std::size_t slot) {
  auto& att = attachments_[slot];
  const auto add = [&](const IpAddr& addr) {
    auto& slots = addr_to_attachment_[addr];
    // Keep slots ascending (= attach order), matching a full rebuild, so
    // anycast tie-breaking is independent of refresh history.
    slots.insert(std::lower_bound(slots.begin(), slots.end(), slot), slot);
    att.indexed_addrs.push_back(addr);
  };
  for (const auto& iface : att.host->interfaces()) {
    if (iface.name == "lo") continue;
    if (iface.addr4) add(*iface.addr4);
    if (iface.addr6) add(*iface.addr6);
  }
}

void Network::unindex_attachment(std::size_t slot) {
  auto& att = attachments_[slot];
  for (const auto& addr : att.indexed_addrs) {
    const auto it = addr_to_attachment_.find(addr);
    if (it == addr_to_attachment_.end()) continue;
    std::erase(it->second, slot);
    if (it->second.empty()) addr_to_attachment_.erase(it);
  }
  att.indexed_addrs.clear();
}

void Network::reindex_addresses() {
  // Full rebuild: the fallback (and the debug-check oracle) for the
  // incremental index maintained by index/unindex_attachment.
  addr_to_attachment_.clear();
  host_index_.clear();
  host_index_.reserve(attachments_.size());
  addr_to_attachment_.reserve(2 * attachments_.size());
  for (std::size_t i = 0; i < attachments_.size(); ++i) {
    auto& att = attachments_[i];
    att.indexed_addrs.clear();
    if (att.host == nullptr) continue;
    host_index_.emplace(att.host, i);
    for (const auto& iface : att.host->interfaces()) {
      if (iface.name == "lo") continue;
      if (iface.addr4) {
        addr_to_attachment_[*iface.addr4].push_back(i);
        att.indexed_addrs.push_back(*iface.addr4);
      }
      if (iface.addr6) {
        addr_to_attachment_[*iface.addr6].push_back(i);
        att.indexed_addrs.push_back(*iface.addr6);
      }
    }
  }
}

void Network::debug_check_address_index() const {
#ifndef NDEBUG
  std::unordered_map<IpAddr, std::vector<std::size_t>> expected;
  for (std::size_t i = 0; i < attachments_.size(); ++i) {
    const auto& att = attachments_[i];
    if (att.host == nullptr) continue;
    assert(host_index_.contains(att.host) && host_index_.at(att.host) == i);
    for (const auto& iface : att.host->interfaces()) {
      if (iface.name == "lo") continue;
      if (iface.addr4) expected[*iface.addr4].push_back(i);
      if (iface.addr6) expected[*iface.addr6].push_back(i);
    }
  }
  assert(expected.size() == addr_to_attachment_.size());
  for (const auto& [addr, slots] : expected) {
    const auto it = addr_to_attachment_.find(addr);
    assert(it != addr_to_attachment_.end() && it->second == slots);
    (void)slots;
    (void)it;
  }
#endif
}

Host* Network::host_by_addr(const IpAddr& addr) const {
  const auto it = addr_to_attachment_.find(addr);
  if (it == addr_to_attachment_.end() || it->second.empty()) return nullptr;
  return attachments_[it->second.front()].host;
}

const Network::Attachment* Network::attachment_of(const Host& host) const {
  const auto it = host_index_.find(&host);
  if (it == host_index_.end()) return nullptr;
  return &attachments_[it->second];
}

double Network::link_latency(RouterId u, RouterId v) const {
  double best = 1e18;
  for (const auto& [peer, latency] : routers_[u].links)
    if (peer == v && latency < best) best = latency;
  return best;
}

bool Network::plane_path(RouterId a, RouterId b, PathInfo& out) const {
  out.routers.clear();
  out.latency_ms = 0.0;
  if (a == b) {
    out.routers.push_back(a);
    return true;
  }
  // Map post-freeze leaf routers to their core gateway.
  RouterId core_a = a;
  RouterId core_b = b;
  if (a >= frozen_count_) {
    const auto& leaf = leaf_links_[a - frozen_count_];
    if (leaf.gateway == kNoRouter) return false;  // not linked yet
    core_a = leaf.gateway;
  }
  if (b >= frozen_count_) {
    const auto& leaf = leaf_links_[b - frozen_count_];
    if (leaf.gateway == kNoRouter) return false;
    core_b = leaf.gateway;
  }
  if (a != core_a) out.routers.push_back(a);
  if (core_a == core_b) {
    out.routers.push_back(core_a);
  } else if (!plane_->append_path(core_a, core_b, out.routers)) {
    out.routers.clear();
    return false;
  }
  if (b != core_b) out.routers.push_back(b);
  // Re-sum latency left to right along the path — the same order Dijkstra
  // accumulated it — so plane paths and fallback paths agree bit-for-bit.
  for (std::size_t i = 0; i + 1 < out.routers.size(); ++i)
    out.latency_ms += link_latency(out.routers[i], out.routers[i + 1]);
  return true;
}

const Network::PathInfo* Network::path(RouterId a, RouterId b) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  if (const auto it = path_cache_.find(key); it != path_cache_.end())
    return &it->second;

  PathInfo info;
  if (frozen_) {
    (void)routing_plane();  // ensure plane_ is built
    if (!plane_path(a, b, info)) return nullptr;
  } else {
    // On-demand Dijkstra from a (the pre-freeze fallback).
    constexpr double kInf = 1e18;
    std::vector<double> dist(routers_.size(), kInf);
    std::vector<RouterId> prev(routers_.size(), kNoRouter);
    using QE = std::pair<double, RouterId>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> q;
    dist[a] = 0;
    q.emplace(0.0, a);
    while (!q.empty()) {
      const auto [d, u] = q.top();
      q.pop();
      if (d > dist[u]) continue;
      for (const auto& [v, w] : routers_[u].links) {
        if (dist[u] + w < dist[v]) {
          dist[v] = dist[u] + w;
          prev[v] = u;
          q.emplace(dist[v], v);
        }
      }
    }
    if (dist[b] >= kInf) return nullptr;

    info.latency_ms = dist[b];
    for (RouterId cur = b;;) {
      info.routers.push_back(cur);
      if (cur == a) break;
      cur = prev[cur];
      if (cur == kNoRouter) return nullptr;  // unreachable (shouldn't happen)
    }
    std::reverse(info.routers.begin(), info.routers.end());
  }
  // Cap the memo table; clearing is deterministic-safe because every entry
  // is recomputable from the (immutable while cached) topology.
  if (path_cache_.size() >= kPathCacheMaxEntries) path_cache_.clear();
  const auto [it, inserted] = path_cache_.emplace(key, std::move(info));
  (void)inserted;
  return &it->second;
}

double Network::jitter() {
  if (jitter_stddev_ms_ <= 0) return 0;
  return std::max(0.0, rng_.normal(0.0, jitter_stddev_ms_));
}

std::optional<double> Network::base_latency_ms(const Host& a, const Host& b) const {
  const auto* aa = attachment_of(a);
  const auto* ab = attachment_of(b);
  if (aa == nullptr || ab == nullptr) return std::nullopt;
  const auto* p = path(aa->router, ab->router);
  if (p == nullptr) return std::nullopt;
  return aa->access_latency_ms + p->latency_ms + ab->access_latency_ms;
}

TransactResult Network::transact(Host& from, Packet packet,
                                 const TransactOptions& opts) {
  // Fast path: nothing observing this thread — skip straight to delivery.
  // This keeps the disabled-tracing per-packet cost to two thread-local
  // reads and adds no allocations (the acceptance bar for the hot path).
  if (!obs::tracing() && obs::meter() == nullptr)
    return transact_impl(from, packet, opts);

  obs::Span span("net.transact", "netsim");
  if (span) {
    span.arg("host", from.name());
    span.arg("dst", packet.dst.str());
    span.arg("proto", proto_name(packet.proto));
    span.arg("dst_port", static_cast<std::int64_t>(packet.dst_port));
  }
  auto result = transact_impl(from, packet, opts);
  if (span) {
    span.arg("status", status_name(result.status));
    if (result.via_tunnel) span.arg("via_tunnel", "true");
  }
  obs::count(kTransactMetricNames[static_cast<std::size_t>(result.status)]);
  if (result.via_tunnel) obs::count("net.via_tunnel");
  obs::observe("net.rtt_ms", result.rtt_ms, obs::kRttBucketsMs);
  return result;
}

TransactResult Network::transact_impl(Host& from, Packet& packet,
                                      const TransactOptions& opts) {
  struct DepthGuard {
    int& d;
    explicit DepthGuard(int& depth) : d(depth) { ++d; }
    ~DepthGuard() { --d; }
  } guard(transact_depth_);
  if (transact_depth_ > 8) {
    // Forwarding loop (e.g. a tunnel routed through itself): drop.
    TransactResult r;
    r.status = TransactStatus::kDropped;
    return r;
  }

  const auto* from_att = attachment_of(from);
  if (from_att == nullptr) {
    TransactResult r;
    r.status = TransactStatus::kNoRoute;
    return r;
  }

  // 1. Route lookup on the sender.
  const auto route = from.routes().lookup(packet.dst);
  if (!route) {
    TransactResult r;
    r.status = TransactStatus::kNoRoute;
    return r;
  }
  const Interface* iface = from.find_interface(route->interface_name);
  if (iface == nullptr || !iface->up) {
    TransactResult r;
    r.status = TransactStatus::kInterfaceDown;
    return r;
  }

  // 2. Fill in the source address if unspecified.
  if (packet.src.is_unspecified()) {
    const auto src = packet.dst.is_v4() ? iface->addr4 : iface->addr6;
    if (src) packet.src = *src;
  }

  // 3. Sender firewall.
  if (!from.firewall().allows(packet, Direction::kOut)) {
    TransactResult r;
    r.status = TransactStatus::kBlockedLocal;
    r.rtt_ms = opts.timeout_ms;
    clock_.advance_millis(opts.timeout_ms);
    return r;
  }

  // 4. Capture on the chosen egress interface.
  from.capture().record(clock_.now(), Direction::kOut, iface->name, packet);

  // 5. Tunnel encapsulation path.
  if (from.has_tunnel_hook() && iface->name == from.tunnel_interface()) {
    auto outer = from.tunnel_hook()(packet);
    if (!outer) {
      TransactResult r;
      r.status = TransactStatus::kDropped;
      r.rtt_ms = opts.timeout_ms;
      r.via_tunnel = true;
      clock_.advance_millis(opts.timeout_ms);
      return r;
    }
    TransactResult outer_result = transact(from, std::move(*outer), opts);
    outer_result.via_tunnel = true;
    if (!outer_result.ok()) return outer_result;
    // Decapsulate the tunnel reply back into the inner reply.
    auto inner_reply = decode_inner(outer_result.reply);
    if (!inner_reply) {
      outer_result.status = TransactStatus::kDropped;
      outer_result.reply.clear();
      return outer_result;
    }
    from.capture().record(clock_.now(), Direction::kIn, iface->name,
                          *inner_reply);
    outer_result.reply = std::move(inner_reply->payload);
    outer_result.responder = inner_reply->src;
    // ICMP errors generated beyond the tunnel surface as the corresponding
    // transaction status (traceroute through a VPN depends on this).
    if (inner_reply->proto == Proto::kIcmpTimeExceeded)
      outer_result.status = TransactStatus::kTtlExpired;
    return outer_result;
  }

  // 6. Direct delivery.
  return deliver(from, *from_att, packet, opts);
}

TransactResult Network::deliver(Host& from, const Attachment& from_att,
                                Packet& packet,
                                const TransactOptions& opts) {
  TransactResult r;

  // Find the destination attachment; with anycast replicas, the replica
  // with the lowest path latency from the sender's router wins.
  const auto dst_it = addr_to_attachment_.find(packet.dst);
  if (dst_it == addr_to_attachment_.end() || dst_it->second.empty()) {
    r.status = TransactStatus::kNoSuchHost;
    r.rtt_ms = opts.timeout_ms;
    clock_.advance_millis(opts.timeout_ms);
    return r;
  }
  std::size_t best_idx = dst_it->second.front();
  if (dst_it->second.size() > 1) {
    double best = 1e18;
    for (std::size_t idx : dst_it->second) {
      const auto* pi = path(from_att.router, attachments_[idx].router);
      if (pi != nullptr && pi->latency_ms < best) {
        best = pi->latency_ms;
        best_idx = idx;
      }
    }
  }
  const Attachment& dst_att = attachments_[best_idx];
  Host* dst_host = dst_att.host;

  const PathInfo* p = path(from_att.router, dst_att.router);
  if (p == nullptr) {
    r.status = TransactStatus::kNoRoute;
    r.rtt_ms = opts.timeout_ms;
    clock_.advance_millis(opts.timeout_ms);
    return r;
  }

  // Fault plane: one pointer test when disabled. A drop verdict loses the
  // packet exactly like a middlebox drop (kDropped, timeout charged, no
  // jitter draw); extra latency widens the one-way path both directions.
  double fault_latency_ms = 0.0;
  if (fault_injector_ != nullptr) {
    const auto verdict = fault_injector_->on_deliver(
        packet, p->routers.data(), p->routers.size(), clock_.now().millis());
    if (verdict.drop) {
      r.status = TransactStatus::kDropped;
      r.rtt_ms = opts.timeout_ms;
      clock_.advance_millis(opts.timeout_ms);
      return r;
    }
    fault_latency_ms = verdict.extra_latency_ms;
  }

  obs::observe("net.path_hops", static_cast<double>(p->routers.size()),
               obs::kHopBuckets);

  // Walk the router path: TTL decrements per router, middleboxes inspect.
  double elapsed_one_way = from_att.access_latency_ms + fault_latency_ms;
  double per_hop =
      p->routers.size() > 1 ? p->latency_ms / static_cast<double>(p->routers.size() - 1) : 0.0;
  const bool trace_hops = obs::packet_hops_enabled();
  for (std::size_t i = 0; i < p->routers.size(); ++i) {
    if (i > 0) elapsed_one_way += per_hop;
    if (trace_hops) {
      obs::Instant hop("net.hop", "netsim");
      hop.arg("router", routers_[p->routers[i]].name);
      hop.arg("ttl", static_cast<std::int64_t>(packet.ttl - 1));
    }
    packet.ttl -= 1;
    if (packet.ttl <= 0) {
      r.status = TransactStatus::kTtlExpired;
      r.responder = router_addr(p->routers[i]);
      r.rtt_ms = 2 * elapsed_one_way + jitter();
      clock_.advance_millis(r.rtt_ms);
      return r;
    }
    auto& router = routers_[p->routers[i]];
    if (router.middlebox) {
      auto verdict = router.middlebox->on_transit(packet);
      if (verdict.action != Middlebox::Action::kPass && obs::tracing()) {
        obs::Instant mb("net.middlebox", "netsim");
        mb.arg("router", router.name);
        mb.arg("action", verdict.action == Middlebox::Action::kDrop
                             ? "drop"
                             : "respond");
      }
      if (verdict.action == Middlebox::Action::kDrop) {
        obs::count("net.middlebox.drop");
        r.status = TransactStatus::kDropped;
        r.rtt_ms = opts.timeout_ms;
        clock_.advance_millis(opts.timeout_ms);
        return r;
      }
      if (verdict.action == Middlebox::Action::kRespond) {
        // The middlebox answers in place of the destination; to the sender
        // this is indistinguishable from a genuine reply.
        obs::count("net.middlebox.respond");
        r.status = TransactStatus::kOk;
        r.reply = std::move(verdict.response_payload);
        r.responder = packet.dst;
        r.rtt_ms = 2 * elapsed_one_way + jitter();
        clock_.advance_millis(r.rtt_ms);
        return r;
      }
    }
  }
  elapsed_one_way += dst_att.access_latency_ms;

  // Destination firewall.
  if (!dst_host->firewall().allows(packet, Direction::kIn)) {
    r.status = TransactStatus::kBlockedRemote;
    r.rtt_ms = opts.timeout_ms;
    clock_.advance_millis(opts.timeout_ms);
    return r;
  }

  // Capture on the destination's receiving interface.
  std::string_view dst_iface = "eth0";
  for (const auto& i : dst_host->interfaces()) {
    if ((packet.dst.is_v4() && i.addr4 == packet.dst) ||
        (packet.dst.is_v6() && i.addr6 == packet.dst)) {
      dst_iface = i.name;
      break;
    }
  }
  dst_host->capture().record(clock_.now(), Direction::kIn, dst_iface, packet);

  const double round_trips = 1.0 + opts.extra_round_trips;

  // ICMP echo handled by the destination stack itself.
  if (packet.proto == Proto::kIcmpEcho) {
    r.status = TransactStatus::kOk;
    r.responder = packet.dst;
    r.rtt_ms = 2 * elapsed_one_way * round_trips + jitter();
    clock_.advance_millis(r.rtt_ms);
    return r;
  }

  // Look up the bound service.
  Service* service = dst_host->find_service(packet.proto, packet.dst_port);
  if (service == nullptr) {
    r.status = TransactStatus::kNoService;
    r.rtt_ms = 2 * elapsed_one_way + jitter();
    clock_.advance_millis(r.rtt_ms);
    return r;
  }

  // Charge the forward path time before the service runs, so any nested
  // transactions the service makes see a consistent clock.
  clock_.advance_millis(elapsed_one_way);
  const auto t_before = clock_.now();
  ServiceContext ctx{*this, *dst_host, packet};
  auto reply = service->handle(ctx);
  const double service_ms = (clock_.now() - t_before).millis();

  if (!reply) {
    r.status = TransactStatus::kNoReply;
    r.rtt_ms = opts.timeout_ms + elapsed_one_way + service_ms;
    clock_.advance_millis(opts.timeout_ms);
    return r;
  }

  // Reply packet back to the sender (captures recorded on both ends).
  Packet reply_packet;
  reply_packet.src = packet.dst;
  reply_packet.dst = packet.src;
  reply_packet.proto = packet.proto;
  reply_packet.src_port = packet.dst_port;
  reply_packet.dst_port = packet.src_port;
  reply_packet.payload = std::move(*reply);
  dst_host->capture().record(clock_.now(), Direction::kOut, dst_iface,
                             reply_packet);

  // Return path + handshake surcharge.
  const double return_ms =
      elapsed_one_way + 2 * elapsed_one_way * static_cast<double>(opts.extra_round_trips);
  clock_.advance_millis(return_ms + jitter());

  std::string_view from_iface = "eth0";
  for (const auto& i : from.interfaces()) {
    if ((reply_packet.dst.is_v4() && i.addr4 == reply_packet.dst) ||
        (reply_packet.dst.is_v6() && i.addr6 == reply_packet.dst)) {
      from_iface = i.name;
      break;
    }
  }
  from.capture().record(clock_.now(), Direction::kIn, from_iface, reply_packet);

  r.status = TransactStatus::kOk;
  r.responder = reply_packet.src;
  r.reply = std::move(reply_packet.payload);
  r.rtt_ms = 2 * elapsed_one_way * round_trips + service_ms + jitter();
  return r;
}

std::optional<double> Network::ping(Host& from, const IpAddr& dst) {
  Packet p;
  p.dst = dst;
  p.proto = Proto::kIcmpEcho;
  const auto res = transact(from, std::move(p));
  if (!res.ok()) return std::nullopt;
  return res.rtt_ms;
}

TracerouteResult Network::traceroute(Host& from, const IpAddr& dst, int max_ttl) {
  TracerouteResult out;
  for (int ttl = 1; ttl <= max_ttl; ++ttl) {
    Packet p;
    p.dst = dst;
    p.proto = Proto::kIcmpEcho;
    p.ttl = ttl;
    const auto res = transact(from, std::move(p));
    TracerouteHop hop;
    hop.ttl = ttl;
    hop.rtt_ms = res.rtt_ms;
    if (res.status == TransactStatus::kTtlExpired) {
      hop.router = res.responder;
      out.hops.push_back(hop);
      continue;
    }
    if (res.ok()) {
      hop.router = res.responder;
      out.hops.push_back(hop);
      out.reached = true;
      return out;
    }
    out.hops.push_back(hop);  // lost probe
    return out;               // hard failure; stop probing
  }
  return out;
}

}  // namespace vpna::netsim

#include "netsim/host.h"

#include <algorithm>
#include <stdexcept>

namespace vpna::netsim {

Host::Host(std::string name) : name_(std::move(name)) {
  Interface lo;
  lo.name = "lo";
  lo.addr4 = IpAddr::v4(127, 0, 0, 1);
  interfaces_.push_back(std::move(lo));
}

Interface& Host::add_interface(std::string name, std::optional<IpAddr> addr4,
                               std::optional<IpAddr> addr6) {
  if (find_interface(name) != nullptr)
    throw std::invalid_argument("duplicate interface " + name);
  Interface iface;
  iface.name = std::move(name);
  iface.addr4 = addr4;
  iface.addr6 = addr6;
  interfaces_.push_back(std::move(iface));
  return interfaces_.back();
}

void Host::remove_interface(std::string_view name) {
  std::erase_if(interfaces_,
                [&](const Interface& i) { return i.name == name; });
  if (tunnel_interface_ == name) clear_tunnel_hook();
}

Interface* Host::find_interface(std::string_view name) noexcept {
  for (auto& i : interfaces_)
    if (i.name == name) return &i;
  return nullptr;
}

const Interface* Host::find_interface(std::string_view name) const noexcept {
  for (const auto& i : interfaces_)
    if (i.name == name) return &i;
  return nullptr;
}

std::optional<IpAddr> Host::primary_addr(IpFamily family) const {
  for (const auto& i : interfaces_) {
    if (!i.up || i.name == "lo") continue;
    if (family == IpFamily::kV4 && i.addr4) return i.addr4;
    if (family == IpFamily::kV6 && i.addr6) return i.addr6;
  }
  return std::nullopt;
}

void Host::bind_service(Proto proto, std::uint16_t port,
                        std::shared_ptr<Service> service) {
  const auto key = service_key(proto, port);
  const auto it = std::lower_bound(
      services_.begin(), services_.end(), key,
      [](const ServiceBinding& b, std::uint32_t k) { return b.key < k; });
  if (it != services_.end() && it->key == key) {
    it->service = std::move(service);
    return;
  }
  services_.insert(it, ServiceBinding{key, std::move(service)});
}

void Host::unbind_service(Proto proto, std::uint16_t port) {
  const auto key = service_key(proto, port);
  const auto it = std::lower_bound(
      services_.begin(), services_.end(), key,
      [](const ServiceBinding& b, std::uint32_t k) { return b.key < k; });
  if (it != services_.end() && it->key == key) services_.erase(it);
}

Service* Host::find_service(Proto proto, std::uint16_t port) const {
  const auto key = service_key(proto, port);
  const auto it = std::lower_bound(
      services_.begin(), services_.end(), key,
      [](const ServiceBinding& b, std::uint32_t k) { return b.key < k; });
  return it != services_.end() && it->key == key ? it->service.get() : nullptr;
}

void Host::set_tunnel_hook(std::string tun_interface, TunnelEncapHook hook) {
  tunnel_interface_ = std::move(tun_interface);
  tunnel_hook_ = std::move(hook);
}

void Host::clear_tunnel_hook() noexcept {
  tunnel_interface_.clear();
  tunnel_hook_ = nullptr;
}

std::uint16_t Host::next_ephemeral_port() noexcept {
  if (ephemeral_ == 0xffff) ephemeral_ = 49152;
  return ephemeral_++;
}

}  // namespace vpna::netsim

// Link capacity and the finite FIFO queue in front of a link transmitter.
//
// Until this layer existed, links modelled only latency: every packet
// crossed instantly regardless of size or competition, so "heavy traffic"
// was invisible. A LinkCapacity gives a link a serialization rate and a
// bounded buffer; a LinkQueue enforces that buffer with tail-drop and ECN
// marking (mark instead of drop once occupancy crosses a threshold — the
// RFC 3168 shape, evaluated at enqueue time like a step-function RED).
//
// Invariants the property suite holds this structure to:
//   - occupancy_bytes() never exceeds capacity.queue_limit_bytes;
//   - a packet is ECN-marked only when post-enqueue occupancy exceeds
//     ecn_threshold * queue_limit_bytes;
//   - conservation: stats().enqueued == stats().dequeued + len() and every
//     rejected offer is counted in stats().tail_drops.
//
// The queue knows nothing about flows, faults or the event loop — it is a
// plain deterministic data structure. Whether a *faulted* packet reaches a
// queue at all is the traffic plane's business (see transport/stream.h:
// fault verdicts are taken before the first hop, so a fault drop is never
// double-counted as a queue tail-drop or ECN mark).
#pragma once

#include <cstdint>
#include <deque>

#include "util/clock.h"

namespace vpna::netsim {

struct LinkCapacity {
  double bandwidth_bps = 0.0;  // serialization rate; 0 = uncapacitated
  std::uint32_t queue_limit_bytes = 256 * 1024;
  // Mark fraction: enqueue marks CE once occupancy exceeds this share of
  // queue_limit_bytes. >= 1.0 disables marking (pure tail-drop).
  double ecn_threshold = 0.65;

  [[nodiscard]] bool enabled() const noexcept { return bandwidth_bps > 0.0; }
  // Time to clock `bytes` onto the wire at this rate, in microseconds.
  [[nodiscard]] double serialize_us(std::uint32_t bytes) const noexcept {
    return static_cast<double>(bytes) * 8e6 / bandwidth_bps;
  }

  friend bool operator==(const LinkCapacity&, const LinkCapacity&) noexcept =
      default;
};

struct LinkQueueStats {
  std::uint64_t enqueued = 0;   // accepted into the buffer
  std::uint64_t dequeued = 0;   // handed to the transmitter
  std::uint64_t tail_drops = 0; // rejected: buffer full
  std::uint64_t ecn_marks = 0;  // accepted but CE-marked
  std::uint64_t peak_occupancy_bytes = 0;
};

class LinkQueue {
 public:
  struct Entry {
    std::uint64_t token = 0;  // caller's packet handle (opaque)
    std::uint32_t bytes = 0;
    util::SimTime enqueued_at;
    bool ecn_marked = false;
  };

  explicit LinkQueue(const LinkCapacity& capacity) noexcept
      : capacity_(capacity) {}

  // Tail-drop admission: false (counting the drop) when the packet would
  // push occupancy past the byte limit; otherwise enqueues, ECN-marking
  // the entry if post-enqueue occupancy exceeds the threshold.
  bool offer(std::uint64_t token, std::uint32_t bytes, util::SimTime now);

  // Pops the head. Pre: !empty(). The entry's enqueued_at lets the caller
  // account queueing delay against `now` at dequeue time.
  Entry pop();

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t len() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t occupancy_bytes() const noexcept {
    return occupancy_bytes_;
  }
  [[nodiscard]] const LinkCapacity& capacity() const noexcept {
    return capacity_;
  }
  [[nodiscard]] const LinkQueueStats& stats() const noexcept { return stats_; }

 private:
  LinkCapacity capacity_;
  std::deque<Entry> entries_;
  std::uint64_t occupancy_bytes_ = 0;
  LinkQueueStats stats_;
};

}  // namespace vpna::netsim
